// Adversarial skew suite: does value-aware (heavy-hitter sketch) costing
// actually save work on skewed data, and does it cost anything on uniform
// data? Each fixture pairs a hand-built repository whose statistics lie to
// a uniform cost model with two arms that replay the SAME op stream over
// the SAME initial database — sketch costing ON vs OFF
// (Planner::set_sketch_costing) — and compares rows examined
// (Scheduler::TotalRowsExamined), the planner-quality metric wall time on a
// loaded CI box cannot give. Updates run closed-loop (each completes before
// the next is submitted): batch submission interleaves chase steps across
// in-flight updates, and the arms' different re-plan timing then perturbs
// retry order — concurrency-control noise, not the planner signal.
//
// The trap (see the sigma mapping below): Hot's 'K0' column is Zipf-skewed,
// so its uniform per-value estimate N/distinct says ~30 rows while the real
// 'K0' bucket holds the Zipf head (~20% of the relation at theta 0.99).
// Mid's probe column is genuinely uniform at ~75 rows per value. A uniform
// cost model therefore starts the Probe-pinned violation query at Hot
// (30 < 75) and walks the hot bucket plus one Mid probe per hot row; the
// sketch model prices 'K0' at its tracked (exact) bucket, starts at Mid,
// and examines a fraction of the rows. At theta 0 the 'K0' bucket really
// is ~30 rows, both models order identically, and the arms must tie —
// value-awareness may not tax uniform workloads.
//
// Fixtures: (graph in {chain, fanout}) x (theta in {0, 0.6, <top>}), where
// the tail graph shapes the cascade each repair sets off (a linear
// four-hop chain vs a one-to-three fan-out) and <top> defaults to 0.99
// (--zipf overrides). CI gates on the per-fixture rows_examined ratio:
// off/on >= 2 at the top theta, within +-10% at theta 0 (identical plans
// make the theta-0 arms literally identical runs).
//
// Flags are fig_common's; relevant here: --updates, --runs, --seed, --zipf
// (top theta), --hotp/--hotranks (workload hot-prefix collisions for the
// skewed fixtures), --verbose.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/fig_common.h"
#include "ccontrol/scheduler.h"
#include "query/plan.h"
#include "tgd/parser.h"

namespace youtopia {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Seeded repository + mappings for one (graph, theta) fixture. Arms rewind
// to update number 0 (RemoveVersionsAbove) between runs, so the seed data
// is shared by every arm.
struct Fixture {
  std::string graph;
  double theta = 0;
  Database db;
  std::vector<Value> pool;  // 'K0'..'K49'; rank 0 is the Zipf head
  // Workload draw pool: the K head followed by a long cold tail
  // ('W0'..), so a theta-0 stream spreads too thin to grow new heavy
  // hitters mid-run — emergent hot sets would make the sketch arm replan
  // (hot-set rotation) where the control cannot, and the theta-0 arms
  // must stay plan-identical for the parity gate to be meaningful. The
  // Zipf head and the --hotp collision prefix still land on K0..K3.
  std::vector<Value> workload_pool;
  std::vector<Tgd> tgds;
};

constexpr size_t kPoolSize = 50;
constexpr size_t kHotRows = 1500;   // Hot(h, u): h Zipf(theta) over the pool
constexpr size_t kMidRows = 3000;   // Mid(u, v): v uniform over 40 values
constexpr size_t kProbeRows = 40;   // Probe(v, t): one seed row per v
constexpr size_t kMuValues = 1000;  // join-attribute domain ("mu0"..)
constexpr size_t kWorkloadPool = 500;  // K head + cold 'W' tail (see Fixture)

void BuildFixture(const std::string& graph, double theta, uint64_t seed,
                  bool verbose, Fixture* out) {
  Fixture& fx = *out;
  fx.graph = graph;
  fx.theta = theta;
  Database& db = fx.db;
  CHECK(db.CreateRelation("Hot", {"h", "u"}).ok());
  CHECK(db.CreateRelation("Mid", {"u", "v"}).ok());
  CHECK(db.CreateRelation("Probe", {"v", "t"}).ok());
  CHECK(db.CreateRelation("T1", {"v", "z"}).ok());
  if (graph == "chain") {
    CHECK(db.CreateRelation("T2", {"a", "b"}).ok());
    CHECK(db.CreateRelation("T3", {"a", "b"}).ok());
    CHECK(db.CreateRelation("T4", {"a", "b"}).ok());
  } else {
    CHECK(db.CreateRelation("T2a", {"a", "b"}).ok());
    CHECK(db.CreateRelation("T2b", {"a", "b"}).ok());
    CHECK(db.CreateRelation("T2c", {"a", "b"}).ok());
  }

  for (size_t i = 0; i < kPoolSize; ++i) {
    fx.pool.push_back(db.InternConstant("K" + std::to_string(i)));
  }
  fx.workload_pool = fx.pool;
  for (size_t i = kPoolSize; i < kWorkloadPool; ++i) {
    fx.workload_pool.push_back(db.InternConstant("W" + std::to_string(i)));
  }

  TgdParser parser(&db.catalog(), &db.symbols());
  auto add = [&](const std::string& text) {
    Result<Tgd> tgd = parser.ParseTgd(text);
    CHECK(tgd.ok());
    fx.tgds.push_back(std::move(tgd).value());
  };
  // The adversarial mapping: a Probe write pins its atom and leaves
  // Hot('K0', u) & Mid(u, v) as the residual the planner must order.
  add("Hot('K0', u) & Mid(u, v) & Probe(v, t) -> exists z: T1(v, z)");
  if (graph == "chain") {
    add("T1(a, b) -> exists c: T2(b, c)");
    add("T2(a, b) -> exists c: T3(b, c)");
    add("T3(a, b) -> exists c: T4(b, c)");
  } else {
    add("T1(a, b) -> exists c: T2a(b, c)");
    add("T1(a, b) -> exists c: T2b(b, c)");
    add("T1(a, b) -> exists c: T2c(b, c)");
  }

  // Seed directly at update number 0 (visible to every reader). Duplicate
  // draws are absorbed by set semantics, so row counts are approximate —
  // what matters is the shape: Hot piles theta-skewed mass onto 'K0',
  // Mid stays uniform at ~kMidRows/40 rows per v value.
  Rng rng(seed ^ 0x5eed5eedULL);
  const ZipfianSampler zipf(kPoolSize, theta);
  auto mu = [&](uint64_t i) {
    return db.InternConstant("mu" + std::to_string(i));
  };
  const RelationId hot = 0, mid = 1, probe = 2;
  for (size_t i = 0; i < kHotRows; ++i) {
    db.Apply(WriteOp::Insert(
                 hot, {fx.pool[zipf.Sample(&rng)], mu(rng.Uniform(kMuValues))}),
             0);
  }
  for (size_t i = 0; i < kMidRows; ++i) {
    db.Apply(WriteOp::Insert(
                 mid, {mu(rng.Uniform(kMuValues)), fx.pool[rng.Uniform(40)]}),
             0);
  }
  const Value tag = db.InternConstant("t0");
  for (size_t i = 0; i < kProbeRows; ++i) {
    db.Apply(WriteOp::Insert(probe, {fx.pool[i], tag}), 0);
  }
  if (verbose) {
    std::fprintf(stderr,
                 "[skew_suite] fixture %s theta=%.2f: Hot=%zu Mid=%zu "
                 "'K0' bucket=%zu\n",
                 graph.c_str(), theta, db.CountVisible(hot, kReadLatest),
                 db.CountVisible(mid, kReadLatest),
                 db.relation(hot).CandidateCount(0, fx.pool[0]));
  }
}

uint64_t TotalReplans(const std::vector<Tgd>& tgds) {
  uint64_t n = 0;
  for (const Tgd& tgd : tgds) n += tgd.replan_count();
  return n;
}

void MeasureArms(Fixture* fx, const ExperimentConfig& config,
                 std::vector<bench::SkewSuiteArm>* arms, bool verbose) {
  const size_t first = arms->size();
  for (bool sketch : {false, true}) {
    bench::SkewSuiteArm arm;
    arm.graph = fx->graph;
    arm.zipf_theta = fx->theta;
    arm.sketch = sketch;
    arms->push_back(arm);
  }
  for (size_t run = 0; run < config.runs; ++run) {
    // One op stream per run, replayed identically by both arms. The
    // hot-prefix collision knob only applies to the skewed fixtures — the
    // theta-0 fixture is the uniform control and must stay uniform.
    Rng wl_rng(config.seed + 1000003 + 7919 * (run + 1));
    WorkloadOptions wl_opts;
    wl_opts.num_updates = config.updates_per_run;
    wl_opts.delete_fraction = 0.0;
    wl_opts.p_fresh_value = 0.0;  // pool values only: keep the joins hot
    wl_opts.zipf_theta = fx->theta;
    wl_opts.p_hot_value = fx->theta > 0 ? config.p_hot_value : 0.0;
    wl_opts.hot_pool_ranks = config.hot_pool_ranks;
    const std::vector<WriteOp> ops =
        GenerateWorkload(&fx->db, fx->workload_pool, &wl_rng, wl_opts);

    for (size_t a = 0; a < 2; ++a) {
      bench::SkewSuiteArm& arm = (*arms)[first + a];
      fx->db.RemoveVersionsAbove(0);  // rewind to the seeded repository
      Planner::set_sketch_costing(arm.sketch);
      const uint64_t replans_before = TotalReplans(fx->tgds);
      RandomAgent agent(config.seed + 31 * run);
      SchedulerOptions sopts;
      sopts.max_steps_per_update = config.max_steps_per_update;
      sopts.max_attempts_per_update = config.max_attempts_per_update;
      const double start = Now();
      Scheduler scheduler(&fx->db, &fx->tgds, &agent, sopts);
      // Closed-loop: one update completes before the next is submitted.
      // Batching all ops up front would interleave chase steps across
      // in-flight updates, and the two arms' different re-plan timing then
      // perturbs retry/interleaving order — a concurrency-control effect
      // that swamps the planner signal this suite exists to measure.
      for (const WriteOp& op : ops) {
        scheduler.Submit(op);
        scheduler.RunToCompletion();
      }
      arm.seconds += Now() - start;
      arm.rows_examined += scheduler.TotalRowsExamined();
      arm.replans += TotalReplans(fx->tgds) - replans_before;
      arm.committed += scheduler.stats().updates_completed;
      arm.steps += static_cast<double>(scheduler.stats().total_steps);
      if (verbose) {
        std::fprintf(stderr,
                     "[skew_suite] %s theta=%.2f sketch=%d run=%zu "
                     "rows=%llu\n",
                     arm.graph.c_str(), arm.zipf_theta, arm.sketch ? 1 : 0,
                     run,
                     static_cast<unsigned long long>(arm.rows_examined));
      }
    }
  }
  fx->db.RemoveVersionsAbove(0);
  Planner::set_sketch_costing(true);  // leave the process-wide default on
}

int Run(int argc, char** argv) {
  ExperimentConfig defaults;
  defaults.num_constants = kPoolSize;
  defaults.mapping_counts = {4};  // unused; keeps ParseFlagsOver's check quiet
  defaults.updates_per_run = 500;
  defaults.runs = 2;
  defaults.seed = 1;
  defaults.zipf_theta = 0.99;  // top theta of the sweep (--zipf overrides)
  defaults.p_hot_value = 0.25;
  defaults.hot_pool_ranks = 4;
  bool verbose = false;
  ExperimentConfig config =
      bench::ParseFlagsOver(std::move(defaults), argc, argv, &verbose);

  std::vector<bench::SkewSuiteArm> arms;
  const double thetas[] = {0.0, 0.6, config.zipf_theta};
  for (const std::string graph : {"chain", "fanout"}) {
    for (double theta : thetas) {
      Fixture fx;
      BuildFixture(graph, theta, config.seed, verbose, &fx);
      MeasureArms(&fx, config, &arms, verbose);
    }
  }

  std::printf("=== skew_suite ===\n");
  std::printf(
      "config: updates/run=%zu runs=%zu seed=%llu top-theta=%.2f hotp=%.2f\n",
      config.updates_per_run, config.runs,
      static_cast<unsigned long long>(config.seed), config.zipf_theta,
      config.p_hot_value);
  std::printf("%8s %7s %8s %14s %8s %10s %12s %10s\n", "graph", "theta",
              "sketch", "rows_examined", "replans", "committed", "steps",
              "ratio");
  for (size_t i = 0; i < arms.size(); ++i) {
    const bench::SkewSuiteArm& a = arms[i];
    // Arms come in (off, on) pairs; print off/on rows ratio on the on-row.
    std::string ratio = "-";
    if (a.sketch && i > 0 && a.rows_examined > 0) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2fx",
                    static_cast<double>(arms[i - 1].rows_examined) /
                        static_cast<double>(a.rows_examined));
      ratio = buf;
    }
    std::printf("%8s %7.2f %8s %14llu %8llu %10zu %12.0f %10s\n",
                a.graph.c_str(), a.zipf_theta, a.sketch ? "on" : "off",
                static_cast<unsigned long long>(a.rows_examined),
                static_cast<unsigned long long>(a.replans), a.committed,
                a.steps, ratio.c_str());
  }

  return bench::WriteSkewSuiteJson("skew_suite", config, arms) ? 0 : 1;
}

}  // namespace
}  // namespace youtopia

int main(int argc, char** argv) { return youtopia::Run(argc, argv); }
