// Scaling curves for the parallel chase (ccontrol/parallel/), two workload
// graphs in one harness:
//
//  * graph="islands" — the sharding regime: --islands > 1 decomposes the
//    mapping graph into disjoint tgd-closure components, every update pins
//    to a shard worker, and the curve sweeps shard lanes at 1, 2, 4, ...
//    Two effects add up in the speedup column: pinned updates skip the read
//    log, conflict probes and dependency tracking entirely, and shards
//    chase concurrently (bounded by the host's CPUs — the JSON records
//    hardware_concurrency for exactly this reason).
//
//  * graph="dense" — the one-big-component wall sharding cannot crack: a
//    deterministic mapping chain (--chain/--fan) welds the whole schema
//    into ONE component, so the pool collapses to a single shard lane and
//    adding workers buys nothing. The curve instead sweeps sub-workers at
//    1, 2, 4, ... — the intra-shard optimistic mode (read logging on,
//    conflict probes, cascading aborts, per-component commit sequencer; see
//    ccontrol/parallel/intra_shard.h) — against the single-pinned-worker
//    arm. The JSON carries the mode's abort/redo/escalation counters so the
//    optimism's cost is visible next to its throughput.
//
// Throughput is committed updates per second (updates that failed their
// step cap are not counted), so optimistic arms cannot look good by
// burning work on ops that never commit.
//
// Flags are fig_common's; the defaults here are scaled to a smoke run.
// A full curve: parallel_scale --relations=64 --islands=8 --initial=4000
//                              --updates=800 --workers=8 --subs=4 --runs=3
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/fig_common.h"
#include "ccontrol/parallel/parallel_scheduler.h"
#include "obs/metrics.h"

namespace youtopia {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One workload graph: a chase-seeded repository plus the arms measured
// over it. Each arm replays the same per-run op stream from the same
// initial database (RemoveVersionsAbove(0) rewinds between arms).
struct Fixture {
  Database db;
  std::vector<Value> constants;
  std::vector<Tgd> tgds;
  size_t first_point = 0;  // index of the fixture's arms in `points`
  size_t num_points = 0;
};

// `constants` lives inside the fixture; a free accessor keeps MeasureArms'
// call site readable.
const std::vector<Value>& constants_of(const Fixture& fx) {
  return fx.constants;
}

void MeasureArms(Fixture* fx, const ExperimentConfig& config,
                 std::vector<bench::ParallelScalePoint>* points,
                 bool verbose) {
  // One metrics registry per arm, shared by that arm's schedulers across
  // every measured run: the stage histograms in the JSON accumulate all
  // runs' samples (percentiles over the whole measurement, not the last
  // run). Serial arms record only counters, so their stage block is empty.
  std::vector<std::unique_ptr<obs::MetricsRegistry>> arm_metrics(
      fx->num_points);
  for (auto& reg : arm_metrics) reg = std::make_unique<obs::MetricsRegistry>();

  for (size_t run = 0; run < config.runs; ++run) {
    Rng wl_rng(config.seed + 1000003 + 7919 * (run + 1));
    WorkloadOptions wl_opts;
    wl_opts.num_updates = config.updates_per_run;
    wl_opts.delete_fraction = config.delete_fraction;
    const std::vector<WriteOp> ops =
        GenerateWorkload(&fx->db, constants_of(*fx), &wl_rng, wl_opts);

    for (size_t pi = fx->first_point; pi < fx->first_point + fx->num_points;
         ++pi) {
      bench::ParallelScalePoint& p = (*points)[pi];
      fx->db.RemoveVersionsAbove(0);  // rewind to the initial repository
      const double start = Now();
      if (p.engine == "serial") {
        RandomAgent agent(config.seed + 31 * run);
        SchedulerOptions sopts;
        sopts.max_steps_per_update = config.max_steps_per_update;
        sopts.max_attempts_per_update = config.max_attempts_per_update;
        sopts.metrics = arm_metrics[pi - fx->first_point].get();
        Scheduler scheduler(&fx->db, &fx->tgds, &agent, sopts);
        for (const WriteOp& op : ops) scheduler.Submit(op);
        scheduler.RunToCompletion();
        p.aborts += static_cast<double>(scheduler.stats().aborts);
        p.updates_per_second +=
            static_cast<double>(scheduler.stats().updates_completed);
      } else {
        ParallelSchedulerOptions popts;
        popts.num_workers = p.workers;
        popts.sub_workers = p.sub_workers;
        popts.max_steps_per_update = config.max_steps_per_update;
        popts.max_attempts_per_update = config.max_attempts_per_update;
        popts.agent_seed = config.seed + 31 * run;
        popts.metrics = arm_metrics[pi - fx->first_point].get();
        ParallelScheduler scheduler(&fx->db, &fx->tgds, popts);
        for (const WriteOp& op : ops) scheduler.Submit(op);
        const ParallelStats stats = scheduler.Drain();
        p.aborts += static_cast<double>(stats.totals.aborts);
        p.cross_shard += static_cast<double>(stats.cross_shard_updates);
        p.escaped += static_cast<double>(stats.escaped_updates);
        p.intra_aborts += static_cast<double>(stats.intra_shard_aborts);
        p.intra_redos += static_cast<double>(stats.intra_shard_redos);
        p.intra_escalations +=
            static_cast<double>(stats.intra_shard_escalations);
        p.updates_per_second +=
            static_cast<double>(stats.totals.updates_completed);
      }
      p.seconds_per_run += Now() - start;
      if (verbose) {
        std::fprintf(stderr, "[parallel_scale] run=%zu %s/%s w=%zu k=%zu done\n",
                     run, p.graph.c_str(), p.engine.c_str(), p.workers,
                     p.sub_workers);
      }
    }
  }
  for (size_t pi = fx->first_point; pi < fx->first_point + fx->num_points;
       ++pi) {
    (*points)[pi].stages = bench::SummarizeStages(
        arm_metrics[pi - fx->first_point]->Snapshot());
  }
  fx->db.RemoveVersionsAbove(0);
}

int Run(int argc, char** argv) {
  // The scaling curve's default shape: fewer, denser islands beat the
  // 100-relation fig sweep, and a contended update stream is the
  // interesting regime — the serial optimistic engine burns thousands of
  // abort-redo executions there, which sharded admission never performs at
  // all. Flags override knobs individually (ParseFlagsOver), so e.g.
  // --verbose or --seed=7 keeps the rest of this shape intact.
  ExperimentConfig defaults;
  defaults.num_relations = 40;
  defaults.num_constants = 50;
  defaults.num_mappings_total = 56;
  defaults.mapping_counts = {56};
  defaults.initial_tuples = 300;
  defaults.updates_per_run = 1200;
  defaults.runs = 3;
  defaults.seed = 1;
  defaults.islands = 8;
  defaults.workers = 4;
  defaults.sub_workers = 4;   // sub-worker sweep top for the dense graph
  defaults.chain_length = 8;  // dense graph: 8-relation chain, linear
  defaults.fan_out = 1;
  bool verbose = false;
  ExperimentConfig config =
      bench::ParseFlagsOver(std::move(defaults), argc, argv, &verbose);
  config.num_mappings_total = config.mapping_counts.back();
  config.delete_fraction = 0.0;

  std::vector<bench::ParallelScalePoint> points;

  // --- graph="islands": the sharding fixture. ------------------------------
  Fixture islands;
  {
    Rng rng(config.seed);
    SchemaGenOptions schema_opts;
    schema_opts.num_relations = config.num_relations;
    CHECK(GenerateSchema(&islands.db, &rng, schema_opts).ok());
    islands.constants =
        GenerateConstantPool(&islands.db, &rng, config.num_constants);
    MappingGenOptions mapping_opts;
    mapping_opts.count = config.num_mappings_total;
    mapping_opts.num_islands = config.islands;
    islands.tgds = GenerateMappings(islands.db, islands.constants, &rng,
                                    mapping_opts);
    InitialDataOptions data_opts;
    data_opts.num_tuples = config.initial_tuples;
    data_opts.max_steps_per_insert = config.initial_chase_step_cap;
    RandomAgent seed_agent(config.seed ^ 0x9e3779b97f4a7c15ULL);
    const InitialDataReport initial = GenerateInitialData(
        &islands.db, &islands.tgds, islands.constants, &rng, &seed_agent,
        data_opts);
    ShardMap map(islands.db.num_relations(), islands.tgds, config.workers);
    std::printf(
        "=== parallel_scale ===\n"
        "islands graph: relations=%zu mappings=%zu islands=%zu "
        "components=%zu initial=%zu updates/run=%zu runs=%zu seed=%llu\n",
        config.num_relations, config.num_mappings_total, config.islands,
        map.num_components(), initial.total_tuples, config.updates_per_run,
        config.runs, static_cast<unsigned long long>(config.seed));
  }
  islands.first_point = points.size();
  {
    bench::ParallelScalePoint serial;
    serial.engine = "serial";
    serial.graph = "islands";
    points.push_back(serial);
    for (size_t w = 1; w <= config.workers; w *= 2) {
      bench::ParallelScalePoint p;
      p.engine = "parallel";
      p.graph = "islands";
      p.workers = w;
      points.push_back(p);
    }
    if (points.back().workers != config.workers) {
      bench::ParallelScalePoint p = points.back();
      p.workers = config.workers;
      points.push_back(p);
    }
  }
  islands.num_points = points.size() - islands.first_point;

  // --- graph="dense": the one-big-component fixture. -----------------------
  // A chain prefix (--chain) welds the schema into one tgd-closure
  // component; the random fill is generated with islands=1 on top, so the
  // graph stays dense. One component = one shard lane, so the worker axis
  // is pinned at 1 and the sweep runs over sub-workers instead.
  Fixture dense;
  {
    Rng rng(config.seed ^ 0x5bf03635ULL);
    SchemaGenOptions schema_opts;
    schema_opts.num_relations = config.num_relations;
    CHECK(GenerateSchema(&dense.db, &rng, schema_opts).ok());
    dense.constants =
        GenerateConstantPool(&dense.db, &rng, config.num_constants);
    MappingGenOptions mapping_opts;
    mapping_opts.count = config.num_mappings_total;
    mapping_opts.num_islands = 1;
    mapping_opts.chain_length =
        config.chain_length > 0 ? config.chain_length : 8;
    mapping_opts.fan_out = config.fan_out;
    dense.tgds =
        GenerateMappings(dense.db, dense.constants, &rng, mapping_opts);
    InitialDataOptions data_opts;
    data_opts.num_tuples = config.initial_tuples;
    data_opts.max_steps_per_insert = config.initial_chase_step_cap;
    RandomAgent seed_agent(config.seed ^ 0x7f4a7c15ULL);
    const InitialDataReport initial = GenerateInitialData(
        &dense.db, &dense.tgds, dense.constants, &rng, &seed_agent,
        data_opts);
    ShardMap map(dense.db.num_relations(), dense.tgds, config.workers);
    std::printf(
        "dense graph:   relations=%zu mappings=%zu chain=%zu fan=%zu "
        "components=%zu initial=%zu sub-worker sweep up to %zu\n",
        config.num_relations, config.num_mappings_total,
        mapping_opts.chain_length, config.fan_out, map.num_components(),
        initial.total_tuples, config.sub_workers);
  }
  dense.first_point = points.size();
  {
    bench::ParallelScalePoint serial;
    serial.engine = "serial";
    serial.graph = "dense";
    points.push_back(serial);
    for (size_t k = 1; k <= config.sub_workers; k *= 2) {
      bench::ParallelScalePoint p;
      p.engine = "parallel";
      p.graph = "dense";
      p.workers = 1;  // one component ⇒ one shard lane regardless
      p.sub_workers = k;
      points.push_back(p);
    }
    if (points.back().sub_workers != config.sub_workers) {
      bench::ParallelScalePoint p = points.back();
      p.sub_workers = config.sub_workers;
      points.push_back(p);
    }
  }
  dense.num_points = points.size() - dense.first_point;

  MeasureArms(&islands, config, &points, verbose);
  MeasureArms(&dense, config, &points, verbose);

  for (bench::ParallelScalePoint& p : points) {
    p.seconds_per_run /= static_cast<double>(config.runs);
    p.aborts /= static_cast<double>(config.runs);
    p.cross_shard /= static_cast<double>(config.runs);
    p.escaped /= static_cast<double>(config.runs);
    p.intra_aborts /= static_cast<double>(config.runs);
    p.intra_redos /= static_cast<double>(config.runs);
    p.intra_escalations /= static_cast<double>(config.runs);
    // updates_per_second accumulated committed-update counts above; divide
    // by total measured time to get committed throughput.
    const double total_seconds =
        p.seconds_per_run * static_cast<double>(config.runs);
    p.updates_per_second =
        total_seconds > 0 ? p.updates_per_second / total_seconds : 0;
  }
  std::printf("%8s %10s %8s %6s %12s %14s %10s %8s %12s\n", "graph", "engine",
              "workers", "subs", "s/run", "committed/s", "speedup", "aborts",
              "intra(a/r/e)");
  double serial_ups = 0;
  for (bench::ParallelScalePoint& p : points) {
    if (p.engine == "serial") serial_ups = p.updates_per_second;
    // Speedup is against the SAME graph's serial arm (the serial point
    // precedes its parallel arms in `points`).
    p.speedup_vs_serial =
        serial_ups > 0 ? p.updates_per_second / serial_ups : 0;
    std::printf("%8s %10s %8zu %6zu %12.4f %14.1f %9.2fx %8.1f %4.0f/%4.0f/%4.0f\n",
                p.graph.c_str(), p.engine.c_str(), p.workers, p.sub_workers,
                p.seconds_per_run, p.updates_per_second, p.speedup_vs_serial,
                p.aborts, p.intra_aborts, p.intra_redos,
                p.intra_escalations);
  }

  return bench::WriteParallelScaleJson("parallel_scale", config, points) ? 0
                                                                         : 1;
}

}  // namespace
}  // namespace youtopia

int main(int argc, char** argv) { return youtopia::Run(argc, argv); }
