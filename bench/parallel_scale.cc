// Scaling curve for the sharded parallel chase (ccontrol/parallel/): the
// same disjoint-footprint workload replayed through the serial Scheduler and
// through the ParallelScheduler at 1, 2, 4, ... workers.
//
// The workload is fig3-shaped (random inserts plus a delete fraction over a
// chase-seeded repository) but generated with --islands > 1, so the mapping
// graph decomposes into disjoint tgd-closure components and every update
// pins to a shard worker. Two effects add up in the speedup column:
//   * admission: pinned updates skip the read log, conflict probes and
//     dependency tracking entirely, and serialized shard queues never waste
//     work on optimistic abort-redo;
//   * parallelism: shards chase concurrently (bounded by the host's CPUs —
//     the JSON records hardware_concurrency for exactly this reason).
//
// Flags are fig_common's; the defaults here are scaled to a smoke run.
// A full curve: parallel_scale --relations=64 --islands=8 --initial=4000
//                              --updates=800 --workers=8 --runs=3
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/fig_common.h"
#include "ccontrol/parallel/parallel_scheduler.h"

namespace youtopia {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int Run(int argc, char** argv) {
  // The scaling curve's default shape: fewer, denser islands beat the
  // 100-relation fig sweep, and a contended update stream is the
  // interesting regime — the serial optimistic engine burns thousands of
  // abort-redo executions there, which sharded admission never performs at
  // all. Flags override knobs individually (ParseFlagsOver), so e.g.
  // --verbose or --seed=7 keeps the rest of this shape intact.
  ExperimentConfig defaults;
  defaults.num_relations = 40;
  defaults.num_constants = 50;
  defaults.num_mappings_total = 56;
  defaults.mapping_counts = {56};
  defaults.initial_tuples = 300;
  defaults.updates_per_run = 1200;
  defaults.runs = 3;
  defaults.seed = 1;
  defaults.islands = 8;
  defaults.workers = 4;
  bool verbose = false;
  ExperimentConfig config =
      bench::ParseFlagsOver(std::move(defaults), argc, argv, &verbose);
  config.num_mappings_total = config.mapping_counts.back();
  config.delete_fraction = 0.0;

  Database db;
  Rng rng(config.seed);
  SchemaGenOptions schema_opts;
  schema_opts.num_relations = config.num_relations;
  CHECK(GenerateSchema(&db, &rng, schema_opts).ok());
  const std::vector<Value> constants =
      GenerateConstantPool(&db, &rng, config.num_constants);
  MappingGenOptions mapping_opts;
  mapping_opts.count = config.num_mappings_total;
  mapping_opts.num_islands = config.islands;
  const std::vector<Tgd> tgds =
      GenerateMappings(db, constants, &rng, mapping_opts);

  InitialDataOptions data_opts;
  data_opts.num_tuples = config.initial_tuples;
  data_opts.max_steps_per_insert = config.initial_chase_step_cap;
  RandomAgent seed_agent(config.seed ^ 0x9e3779b97f4a7c15ULL);
  const InitialDataReport initial = GenerateInitialData(
      &db, &tgds, constants, &rng, &seed_agent, data_opts);
  {
    ShardMap map(db.num_relations(), tgds, config.workers);
    std::printf(
        "=== parallel_scale ===\n"
        "config: relations=%zu mappings=%zu islands=%zu components=%zu "
        "initial=%zu updates/run=%zu runs=%zu seed=%llu\n",
        config.num_relations, config.num_mappings_total, config.islands,
        map.num_components(), initial.total_tuples, config.updates_per_run,
        config.runs, static_cast<unsigned long long>(config.seed));
  }

  // Arms: serial, then parallel at 1, 2, 4, ... up to --workers.
  std::vector<size_t> parallel_arms;
  for (size_t w = 1; w <= config.workers; w *= 2) parallel_arms.push_back(w);
  if (parallel_arms.back() != config.workers) {
    parallel_arms.push_back(config.workers);
  }

  std::vector<bench::ParallelScalePoint> points(1 + parallel_arms.size());
  points[0].engine = "serial";
  points[0].workers = 1;
  for (size_t i = 0; i < parallel_arms.size(); ++i) {
    points[1 + i].engine = "parallel";
    points[1 + i].workers = parallel_arms[i];
  }

  for (size_t run = 0; run < config.runs; ++run) {
    Rng wl_rng(config.seed + 1000003 + 7919 * (run + 1));
    WorkloadOptions wl_opts;
    wl_opts.num_updates = config.updates_per_run;
    wl_opts.delete_fraction = config.delete_fraction;
    const std::vector<WriteOp> ops =
        GenerateWorkload(&db, constants, &wl_rng, wl_opts);

    for (bench::ParallelScalePoint& p : points) {
      db.RemoveVersionsAbove(0);  // rewind to the initial repository
      const double start = Now();
      if (p.engine == "serial") {
        RandomAgent agent(config.seed + 31 * run);
        SchedulerOptions sopts;
        sopts.max_steps_per_update = config.max_steps_per_update;
        sopts.max_attempts_per_update = config.max_attempts_per_update;
        Scheduler scheduler(&db, &tgds, &agent, sopts);
        for (const WriteOp& op : ops) scheduler.Submit(op);
        scheduler.RunToCompletion();
        p.aborts += static_cast<double>(scheduler.stats().aborts);
      } else {
        ParallelSchedulerOptions popts;
        popts.num_workers = p.workers;
        popts.max_steps_per_update = config.max_steps_per_update;
        popts.max_attempts_per_update = config.max_attempts_per_update;
        popts.agent_seed = config.seed + 31 * run;
        ParallelScheduler scheduler(&db, &tgds, popts);
        for (const WriteOp& op : ops) scheduler.Submit(op);
        const ParallelStats stats = scheduler.Drain();
        p.aborts += static_cast<double>(stats.totals.aborts);
        p.cross_shard += static_cast<double>(stats.cross_shard_updates);
        p.escaped += static_cast<double>(stats.escaped_updates);
      }
      p.seconds_per_run += Now() - start;
      if (verbose) {
        std::fprintf(stderr, "[parallel_scale] run=%zu %s w=%zu done\n", run,
                     p.engine.c_str(), p.workers);
      }
    }
  }
  db.RemoveVersionsAbove(0);

  for (bench::ParallelScalePoint& p : points) {
    p.seconds_per_run /= static_cast<double>(config.runs);
    p.aborts /= static_cast<double>(config.runs);
    p.cross_shard /= static_cast<double>(config.runs);
    p.escaped /= static_cast<double>(config.runs);
    p.updates_per_second =
        p.seconds_per_run > 0
            ? static_cast<double>(config.updates_per_run) / p.seconds_per_run
            : 0;
  }
  const double serial_ups = points[0].updates_per_second;
  std::printf("%10s %8s %12s %14s %10s %8s\n", "engine", "workers", "s/run",
              "updates/s", "speedup", "aborts");
  for (bench::ParallelScalePoint& p : points) {
    p.speedup_vs_serial =
        serial_ups > 0 ? p.updates_per_second / serial_ups : 0;
    std::printf("%10s %8zu %12.4f %14.1f %9.2fx %8.1f\n", p.engine.c_str(),
                p.workers, p.seconds_per_run, p.updates_per_second,
                p.speedup_vs_serial, p.aborts);
  }

  return bench::WriteParallelScaleJson("parallel_scale", config, points) ? 0
                                                                         : 1;
}

}  // namespace
}  // namespace youtopia

int main(int argc, char** argv) { return youtopia::Run(argc, argv); }
