// Microbenchmarks for the chase engines: cooperative forward chase
// throughput, backward cascade cost, comparison against the classical
// standard chase on a weakly acyclic set, and stratum length vs mapping
// density (the ablation for the frontier-stopping design of Section 2.2).
#include <benchmark/benchmark.h>

#include "core/standard_chase.h"
#include "core/update.h"
#include "core/violation_detector.h"
#include "relational/database.h"
#include "tgd/parser.h"
#include "workload/generators.h"

namespace youtopia {
namespace {

void BM_ForwardChaseInsertPropagation(benchmark::State& state) {
  // End-to-end cost of one user insert propagated through a random schema
  // with the given number of mappings.
  const size_t mapping_count = static_cast<size_t>(state.range(0));
  Database db;
  Rng rng(11);
  SchemaGenOptions so;
  so.num_relations = 50;
  (void)GenerateSchema(&db, &rng, so);
  const auto constants = GenerateConstantPool(&db, &rng, 30);
  MappingGenOptions mo;
  mo.count = mapping_count;
  const auto tgds = GenerateMappings(db, constants, &rng, mo);
  RandomAgent seed_agent(5);
  InitialDataOptions io;
  io.num_tuples = 1000;
  GenerateInitialData(&db, &tgds, constants, &rng, &seed_agent, io);

  RandomAgent agent(17);
  uint64_t number = 1;
  for (auto _ : state) {
    const RelationId rel =
        static_cast<RelationId>(rng.Uniform(db.num_relations()));
    TupleData data;
    for (size_t p = 0; p < db.relation(rel).arity(); ++p) {
      data.push_back(constants[rng.Uniform(constants.size())]);
    }
    Update update(number++, WriteOp::Insert(rel, std::move(data)), &tgds);
    update.RunToCompletion(&db, &agent);
    benchmark::DoNotOptimize(update.steps_taken());
  }
}
BENCHMARK(BM_ForwardChaseInsertPropagation)->Arg(10)->Arg(30)->Arg(60);

void BM_AfterWriteBatch(benchmark::State& state) {
  // Cost of the batched violation-detection pass over one chase step's
  // writes (state.range(0) inserts, half of them duplicate content so the
  // fingerprint dedup engages), against the Figure-2-shaped sigma3 schema.
  const size_t batch_size = static_cast<size_t>(state.range(0));
  Database db;
  const RelationId a = *db.CreateRelation("A", {"location", "name"});
  const RelationId t = *db.CreateRelation("T", {"attraction", "company",
                                                "start"});
  (void)*db.CreateRelation("R", {"company", "attraction", "review"});
  TgdParser parser(&db.catalog(), &db.symbols());
  std::vector<Tgd> tgds;
  tgds.push_back(*parser.ParseTgd(
      "A(l, n) & T(n, co, s) -> exists rv: R(co, n, rv)"));
  Rng rng(7);
  auto constant = [&](const char* p, size_t i) {
    return db.InternConstant(std::string(p) + std::to_string(i));
  };
  for (size_t i = 0; i < 512; ++i) {
    db.Apply(WriteOp::Insert(a, {constant("loc", rng.Uniform(64)),
                                 constant("name", rng.Uniform(64))}),
             0);
  }
  std::vector<PhysicalWrite> batch;
  for (size_t i = 0; i < batch_size; ++i) {
    PhysicalWrite w;
    w.kind = WriteKind::kInsert;
    w.rel = t;
    w.row = static_cast<RowId>(i);
    // Every other write repeats the previous tuple's content.
    const size_t key = (i / 2) * 2;
    w.data = {constant("name", key % 64), constant("co", key % 64),
              constant("city", key % 64)};
    batch.push_back(std::move(w));
  }
  ViolationDetector detector(&tgds);
  Snapshot snap(&db, 1);
  std::vector<Violation> out;
  std::vector<ReadQueryRecord> reads;
  for (auto _ : state) {
    out.clear();
    reads.clear();
    detector.AfterWrites(snap, batch, &out, &reads);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch_size));
}
BENCHMARK(BM_AfterWriteBatch)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_BackwardChaseCascade(benchmark::State& state) {
  // Deleting the root of a chain P0 -> P1 -> ... -> Pk cascades k deletes.
  const size_t depth = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    std::vector<RelationId> rels;
    for (size_t i = 0; i <= depth; ++i) {
      rels.push_back(*db.CreateRelation("P" + std::to_string(i), {"x"}));
    }
    TgdParser parser(&db.catalog(), &db.symbols());
    std::vector<Tgd> tgds;
    for (size_t i = 0; i < depth; ++i) {
      tgds.push_back(*parser.ParseTgd("P" + std::to_string(i) + "(x) -> P" +
                                      std::to_string(i + 1) + "(x)"));
    }
    const Value v = db.InternConstant("v");
    RowId last_row = 0;
    for (size_t i = 0; i <= depth; ++i) {
      auto w = db.Apply(WriteOp::Insert(rels[i], {v}), 0);
      last_row = w[0].row;
    }
    ScriptedAgent agent;
    Update update(1, WriteOp::Delete(rels[depth], last_row), &tgds);
    state.ResumeTiming();
    update.RunToCompletion(&db, &agent);
    benchmark::DoNotOptimize(update.steps_taken());
  }
}
BENCHMARK(BM_BackwardChaseCascade)->Range(4, 64);

void BM_StandardVsCooperativeOnAcyclicSet(benchmark::State& state) {
  // Classical vs cooperative chase overhead on a weakly acyclic tgd set.
  // Positive frontiers still arise cooperatively — each W(null) generated
  // for a later P-tuple has the earlier W(null) as a more-specific
  // counterpart under null renaming — so the cooperative run uses the
  // deterministic MinContentAgent to resolve them.
  const bool cooperative = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    const RelationId p = *db.CreateRelation("P", {"x"});
    (void)*db.CreateRelation("Q", {"x", "y"});
    (void)*db.CreateRelation("W", {"y"});
    TgdParser parser(&db.catalog(), &db.symbols());
    std::vector<Tgd> tgds;
    tgds.push_back(*parser.ParseTgd("P(x) -> exists y: Q(x, y)"));
    tgds.push_back(*parser.ParseTgd("Q(x, y) -> W(y)"));
    for (int i = 0; i < 64; ++i) {
      db.Apply(WriteOp::Insert(
                   p, {db.InternConstant("p" + std::to_string(i))}),
               0);
    }
    state.ResumeTiming();
    if (cooperative) {
      MinContentAgent agent;
      ViolationDetector detector(&tgds);
      Snapshot snap(&db, 1);
      std::vector<Violation> viols;
      detector.FindAll(snap, &viols);
      Update update = Update::ForViolations(1, std::move(viols), &tgds);
      update.RunToCompletion(&db, &agent);
      benchmark::DoNotOptimize(update.steps_taken());
    } else {
      StandardChase chase(&db, &tgds);
      auto report = chase.Run(1);
      benchmark::DoNotOptimize(report.ok());
    }
  }
  state.SetLabel(cooperative ? "cooperative" : "standard");
}
BENCHMARK(BM_StandardVsCooperativeOnAcyclicSet)->Arg(0)->Arg(1);

}  // namespace
}  // namespace youtopia

// main() lives in bench/micro_main.cc, which also emits BENCH_<name>.json.
