#ifndef YOUTOPIA_BENCH_FIG_COMMON_H_
#define YOUTOPIA_BENCH_FIG_COMMON_H_

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "bench/report.h"
#include "workload/experiment.h"

namespace youtopia {
namespace bench {

// Shared command-line handling, table printing and JSON reporting for the
// figure harnesses.
//
// Flags:
//   --paper             full paper scale (100 relations, 10k initial tuples,
//                       500 updates, 100 runs) — takes a long time
//   --runs=N            override number of runs per data point
//   --initial=N         override initial tuple count
//   --updates=N         override updates per run
//   --relations=N       override relation count
//   --mappings=a,b,c    override the mapping-count sweep
//   --seed=N            RNG seed
//   --workers=N         run through the sharded ParallelScheduler with N
//                       workers (default 1 = the serial Scheduler; real
//                       parallelism needs --islands > 1, since the paper's
//                       dense mapping graph is one tgd-closure component)
//   --islands=N         partition mappings into N disjoint relation islands
//   --subs=K            sub-workers per shard (default 1 = classic pinned;
//                       K > 1 = the optimistic intra-shard mode, for the
//                       dense single-component workload sharding can't split)
//   --chain=L           prepend an L-relation deterministic mapping chain
//                       per island (dense single-component shape; default 0)
//   --fan=F             RHS atoms per chain hop (default 1 = linear chain)
//   --zipf=T            Zipfian theta in [0, 1) for constant-pool draws
//                       (default 0 = the paper's uniform pool)
//   --hotp=P            probability in [0, 1] that a pool draw collides
//                       onto the shared hot prefix instead (default 0; see
//                       WorkloadOptions::p_hot_value)
//   --hotranks=N        size of that shared hot prefix (default 4)
//   --verbose           progress to stderr
// Applies the command-line flags on top of `config` — callers seed it with
// their harness's defaults, so passing one flag overrides one knob instead
// of discarding the whole default shape.
inline ExperimentConfig ParseFlagsOver(ExperimentConfig config, int argc,
                                       char** argv, bool* verbose) {
  // Shared validated integer parsing: consumes one number from *p (advancing
  // it), rejecting junk, overflow and out-of-range values with exit(2).
  // Count-like flags use min_value 1 — a 0 would crash or hang deep in the
  // workload generator instead of failing here; --seed alone admits 0.
  auto parse_int = [](const std::string& arg, const char** p, long min_value,
                      long max_value) -> long {
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(*p, &end, 10);
    if (end == *p || errno == ERANGE || v < min_value || v > max_value) {
      std::fprintf(stderr, "bad value: %s\n", arg.c_str());
      std::exit(2);
    }
    *p = end;
    return v;
  };
  constexpr long kMaxCount = 1L << 30;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto intval = [&](const char* prefix, long min_value,
                      long max_value) -> long {
      const char* p = arg.c_str() + std::strlen(prefix);
      const long v = parse_int(arg, &p, min_value, max_value);
      if (*p != '\0') {
        std::fprintf(stderr, "bad value: %s\n", arg.c_str());
        std::exit(2);
      }
      return v;
    };
    if (arg == "--paper") {
      config.initial_tuples = 10000;
      config.updates_per_run = 500;
      config.runs = 100;
    } else if (arg.rfind("--runs=", 0) == 0) {
      config.runs = static_cast<size_t>(intval("--runs=", 1, kMaxCount));
    } else if (arg.rfind("--initial=", 0) == 0) {
      config.initial_tuples =
          static_cast<size_t>(intval("--initial=", 0, kMaxCount));
    } else if (arg.rfind("--updates=", 0) == 0) {
      config.updates_per_run =
          static_cast<size_t>(intval("--updates=", 1, kMaxCount));
    } else if (arg.rfind("--relations=", 0) == 0) {
      config.num_relations =
          static_cast<size_t>(intval("--relations=", 1, kMaxCount));
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = static_cast<uint64_t>(
          intval("--seed=", 0, std::numeric_limits<long>::max()));
    } else if (arg.rfind("--workers=", 0) == 0) {
      config.workers = static_cast<size_t>(intval("--workers=", 1, 1024));
    } else if (arg.rfind("--islands=", 0) == 0) {
      config.islands = static_cast<size_t>(intval("--islands=", 1, 1024));
    } else if (arg.rfind("--subs=", 0) == 0) {
      config.sub_workers = static_cast<size_t>(intval("--subs=", 1, 1024));
    } else if (arg.rfind("--chain=", 0) == 0) {
      config.chain_length =
          static_cast<size_t>(intval("--chain=", 0, kMaxCount));
    } else if (arg.rfind("--fan=", 0) == 0) {
      config.fan_out = static_cast<size_t>(intval("--fan=", 1, 64));
    } else if (arg.rfind("--zipf=", 0) == 0) {
      const char* p = arg.c_str() + std::strlen("--zipf=");
      char* end = nullptr;
      errno = 0;
      const double v = std::strtod(p, &end);
      // [0, 1): ZipfianSampler's closed-form inversion requires theta < 1.
      if (end == p || *end != '\0' || errno == ERANGE || v < 0.0 || v >= 1.0) {
        std::fprintf(stderr, "bad value: %s\n", arg.c_str());
        std::exit(2);
      }
      config.zipf_theta = v;
    } else if (arg.rfind("--hotp=", 0) == 0) {
      const char* p = arg.c_str() + std::strlen("--hotp=");
      char* end = nullptr;
      errno = 0;
      const double v = std::strtod(p, &end);
      if (end == p || *end != '\0' || errno == ERANGE || v < 0.0 || v > 1.0) {
        std::fprintf(stderr, "bad value: %s\n", arg.c_str());
        std::exit(2);
      }
      config.p_hot_value = v;
    } else if (arg.rfind("--hotranks=", 0) == 0) {
      config.hot_pool_ranks =
          static_cast<size_t>(intval("--hotranks=", 1, kMaxCount));
    } else if (arg.rfind("--mappings=", 0) == 0) {
      config.mapping_counts.clear();
      const char* p = arg.c_str() + std::strlen("--mappings=");
      while (*p != '\0') {
        config.mapping_counts.push_back(
            static_cast<size_t>(parse_int(arg, &p, 1, 1L << 20)));
        if (*p == ',') ++p;
      }
    } else if (arg == "--verbose") {
      *verbose = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (config.mapping_counts.empty()) {
    std::fprintf(stderr, "--mappings needs at least one count\n");
    std::exit(2);
  }
  // Generate exactly as many mappings as the largest sweep point needs:
  // the initial-data chase runs under the full generated set, so leaving
  // num_mappings_total at the paper's 100 while sweeping --mappings=10,20
  // over a small --relations count makes seeding intractably dense.
  size_t max_count = 0;
  for (size_t c : config.mapping_counts) max_count = std::max(max_count, c);
  config.num_mappings_total = max_count;
  return config;
}

inline ExperimentConfig ParseFlags(int argc, char** argv, bool* verbose) {
  ExperimentConfig config;
  // Default: the paper's dimensions (100 relations, 50 constants, 10k-tuple
  // chase-seeded initial database, 500 updates per run) averaged over 5
  // runs per point; --paper raises the averaging to the full 100 runs.
  config.num_relations = 100;
  config.num_constants = 50;
  config.num_mappings_total = 100;
  config.mapping_counts = {20, 40, 60, 80, 100};
  config.initial_tuples = 10000;
  config.updates_per_run = 500;
  config.runs = 5;
  config.seed = 1;
  return ParseFlagsOver(std::move(config), argc, argv, verbose);
}

inline void PrintResult(const char* figure, const char* workload,
                        const ExperimentConfig& config,
                        const ExperimentResult& result) {
  std::printf("=== %s: %s workload ===\n", figure, workload);
  std::printf(
      "config: relations=%zu constants=%zu initial_tuples=%zu "
      "updates/run=%zu runs=%zu seed=%llu workers=%zu islands=%zu "
      "zipf=%.2f\n",
      config.num_relations, config.num_constants, config.initial_tuples,
      config.updates_per_run, config.runs,
      static_cast<unsigned long long>(config.seed), config.workers,
      config.islands, config.zipf_theta);
  std::printf("initial database: %zu visible tuples\n\n",
              result.initial.total_tuples);

  std::printf("--- Panel (a): total aborts ---\n");
  std::printf("%10s %12s %12s %12s\n", "#mappings", "NAIVE", "COARSE",
              "PRECISE");
  for (size_t i = 0; i < result.mapping_counts.size(); ++i) {
    std::printf("%10zu ", result.mapping_counts[i]);
    for (size_t t = 0; t < 3; ++t) {
      if (result.cells[i][t].runs == 0) {
        std::printf("%12s ", "-");
      } else {
        std::printf("%12.1f ", result.cells[i][t].aborts);
      }
    }
    std::printf("\n");
  }

  std::printf("\n--- Panel (b): cascading abort requests ---\n");
  std::printf("%10s %12s %12s %12s\n", "#mappings", "NAIVE", "COARSE",
              "PRECISE");
  for (size_t i = 0; i < result.mapping_counts.size(); ++i) {
    std::printf("%10zu ", result.mapping_counts[i]);
    for (size_t t = 0; t < 3; ++t) {
      if (result.cells[i][t].runs == 0) {
        std::printf("%12s ", "-");
      } else {
        std::printf("%12.1f ", result.cells[i][t].cascading_abort_requests);
      }
    }
    std::printf("\n");
  }

  std::printf("\n--- Panel (c): slowdown of PRECISE (vs COARSE) ---\n");
  std::printf("%10s %12s %16s %16s\n", "#mappings", "slowdown",
              "COARSE s/upd", "PRECISE s/upd");
  for (size_t i = 0; i < result.mapping_counts.size(); ++i) {
    std::printf("%10zu %12.2f %16.6f %16.6f\n", result.mapping_counts[i],
                result.SlowdownOfPrecise(i),
                result.cells[i][1].per_update_seconds,
                result.cells[i][2].per_update_seconds);
  }
  std::printf("\n");
}

// Human-readable table to stdout plus machine-readable BENCH_<name>.json
// (see bench/report.h) for baseline tracking across PRs. Returns false if
// the JSON could not be written, so harness mains can exit nonzero.
inline bool Report(const char* name, const char* figure, const char* workload,
                   const ExperimentConfig& config,
                   const ExperimentResult& result, const Database& db) {
  PrintResult(figure, workload, config, result);
  return WriteExperimentJson(name, workload, config, result, db);
}

}  // namespace bench
}  // namespace youtopia

#endif  // YOUTOPIA_BENCH_FIG_COMMON_H_
