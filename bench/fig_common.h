#ifndef YOUTOPIA_BENCH_FIG_COMMON_H_
#define YOUTOPIA_BENCH_FIG_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "workload/experiment.h"

namespace youtopia {
namespace bench {

// Shared command-line handling and table printing for the figure harnesses.
//
// Flags:
//   --paper             full paper scale (100 relations, 10k initial tuples,
//                       500 updates, 100 runs) — takes a long time
//   --runs=N            override number of runs per data point
//   --initial=N         override initial tuple count
//   --updates=N         override updates per run
//   --relations=N       override relation count
//   --mappings=a,b,c    override the mapping-count sweep
//   --seed=N            RNG seed
//   --verbose           progress to stderr
inline ExperimentConfig ParseFlags(int argc, char** argv, bool* verbose) {
  ExperimentConfig config;
  // Default: the paper's dimensions (100 relations, 50 constants, 10k-tuple
  // chase-seeded initial database, 500 updates per run) averaged over 5
  // runs per point; --paper raises the averaging to the full 100 runs.
  config.num_relations = 100;
  config.num_constants = 50;
  config.num_mappings_total = 100;
  config.mapping_counts = {20, 40, 60, 80, 100};
  config.initial_tuples = 10000;
  config.updates_per_run = 500;
  config.runs = 5;
  config.seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto intval = [&](const char* prefix) -> long {
      return std::atol(arg.c_str() + std::strlen(prefix));
    };
    if (arg == "--paper") {
      config.initial_tuples = 10000;
      config.updates_per_run = 500;
      config.runs = 100;
    } else if (arg.rfind("--runs=", 0) == 0) {
      config.runs = static_cast<size_t>(intval("--runs="));
    } else if (arg.rfind("--initial=", 0) == 0) {
      config.initial_tuples = static_cast<size_t>(intval("--initial="));
    } else if (arg.rfind("--updates=", 0) == 0) {
      config.updates_per_run = static_cast<size_t>(intval("--updates="));
    } else if (arg.rfind("--relations=", 0) == 0) {
      config.num_relations = static_cast<size_t>(intval("--relations="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = static_cast<uint64_t>(intval("--seed="));
    } else if (arg.rfind("--mappings=", 0) == 0) {
      config.mapping_counts.clear();
      const char* p = arg.c_str() + std::strlen("--mappings=");
      while (*p != '\0') {
        config.mapping_counts.push_back(
            static_cast<size_t>(std::strtol(p, const_cast<char**>(&p), 10)));
        if (*p == ',') ++p;
      }
    } else if (arg == "--verbose") {
      *verbose = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  size_t max_count = 0;
  for (size_t c : config.mapping_counts) max_count = std::max(max_count, c);
  config.num_mappings_total = std::max<size_t>(config.num_mappings_total,
                                               max_count);
  return config;
}

inline void PrintResult(const char* figure, const char* workload,
                        const ExperimentConfig& config,
                        const ExperimentResult& result) {
  std::printf("=== %s: %s workload ===\n", figure, workload);
  std::printf(
      "config: relations=%zu constants=%zu initial_tuples=%zu "
      "updates/run=%zu runs=%zu seed=%llu\n",
      config.num_relations, config.num_constants, config.initial_tuples,
      config.updates_per_run, config.runs,
      static_cast<unsigned long long>(config.seed));
  std::printf("initial database: %zu visible tuples\n\n",
              result.initial.total_tuples);

  std::printf("--- Panel (a): total aborts ---\n");
  std::printf("%10s %12s %12s %12s\n", "#mappings", "NAIVE", "COARSE",
              "PRECISE");
  for (size_t i = 0; i < result.mapping_counts.size(); ++i) {
    std::printf("%10zu ", result.mapping_counts[i]);
    for (size_t t = 0; t < 3; ++t) {
      if (result.cells[i][t].runs == 0) {
        std::printf("%12s ", "-");
      } else {
        std::printf("%12.1f ", result.cells[i][t].aborts);
      }
    }
    std::printf("\n");
  }

  std::printf("\n--- Panel (b): cascading abort requests ---\n");
  std::printf("%10s %12s %12s %12s\n", "#mappings", "NAIVE", "COARSE",
              "PRECISE");
  for (size_t i = 0; i < result.mapping_counts.size(); ++i) {
    std::printf("%10zu ", result.mapping_counts[i]);
    for (size_t t = 0; t < 3; ++t) {
      if (result.cells[i][t].runs == 0) {
        std::printf("%12s ", "-");
      } else {
        std::printf("%12.1f ", result.cells[i][t].cascading_abort_requests);
      }
    }
    std::printf("\n");
  }

  std::printf("\n--- Panel (c): slowdown of PRECISE (vs COARSE) ---\n");
  std::printf("%10s %12s %16s %16s\n", "#mappings", "slowdown",
              "COARSE s/upd", "PRECISE s/upd");
  for (size_t i = 0; i < result.mapping_counts.size(); ++i) {
    std::printf("%10zu %12.2f %16.6f %16.6f\n", result.mapping_counts[i],
                result.SlowdownOfPrecise(i),
                result.cells[i][1].per_update_seconds,
                result.cells[i][2].per_update_seconds);
  }
  std::printf("\n");
}

}  // namespace bench
}  // namespace youtopia

#endif  // YOUTOPIA_BENCH_FIG_COMMON_H_
