// Prints the compiled plan shapes for a fixed, deterministic set of query
// workloads — the CI plan-shape golden check. A cost-model change that flips
// an atom order or an access path changes this output, so it shows up as a
// reviewable diff against bench/baseline/plan_shapes.txt instead of as a
// silent perf cliff.
//
// Regenerate the golden after an intentional planner change:
//   build/release/bench/plan_shapes > bench/baseline/plan_shapes.txt
#include <cstdio>
#include <string>

#include "query/plan.h"
#include "relational/database.h"
#include "tgd/parser.h"
#include "util/rng.h"

namespace youtopia {
namespace {

void PrintTgdPlans(const Database& db, const Tgd& tgd, const char* label) {
  std::printf("[%s] %s\n", label,
              tgd.ToString(db.catalog(), db.symbols()).c_str());
  const TgdPlans& plans = tgd.plans();
  for (size_t a = 0; a < plans.lhs_pinned.size(); ++a) {
    std::printf("  lhs_pinned[%zu]: %s\n", a,
                plans.lhs_pinned[a].ToString(db.catalog()).c_str());
  }
  for (size_t a = 0; a < plans.lhs_delete.size(); ++a) {
    std::printf("  lhs_delete[%zu]: %s\n", a,
                plans.lhs_delete[a].ToString(db.catalog()).c_str());
  }
  std::printf("  lhs_full:      %s\n",
              plans.lhs_full.ToString(db.catalog()).c_str());
  std::printf("  rhs_frontier:  %s\n",
              plans.rhs_frontier.ToString(db.catalog()).c_str());
}

// The paper's sigma3-style mapping over an empty and a seeded repository.
void Sigma3Shapes() {
  Database db;
  const RelationId a = *db.CreateRelation("A", {"location", "name"});
  const RelationId t = *db.CreateRelation("T", {"attraction", "company",
                                                "start"});
  (void)*db.CreateRelation("R", {"company", "attraction", "review"});
  TgdParser parser(&db.catalog(), &db.symbols());
  Tgd tgd = *parser.ParseTgd(
      "A(l, n) & T(n, co, s) -> exists rv: R(co, n, rv)");
  PrintTgdPlans(db, tgd, "sigma3 static (empty repository)");

  // Deterministic seed, mirroring micro_query's JoinFixture.
  Rng rng(7);
  auto constant = [&](const char* prefix, size_t i) {
    return db.InternConstant(std::string(prefix) + std::to_string(i));
  };
  for (size_t i = 0; i < 4096; ++i) {
    const size_t name = rng.Uniform(64);
    db.Apply(WriteOp::Insert(a, {constant("loc", rng.Uniform(64)),
                                 constant("name", name)}),
             0);
    db.Apply(WriteOp::Insert(t, {constant("name", name),
                                 constant("co", rng.Uniform(64)),
                                 constant("city", rng.Uniform(64))}),
             0);
  }
  tgd.RecompilePlans(&db);
  PrintTgdPlans(db, tgd, "sigma3 stats (rows=4096 domain=64)");
}

// The skewed join whose static order is pathological (selective atom last).
void SkewShapes() {
  Database db;
  const RelationId big = *db.CreateRelation("Big", {"v", "u"});
  const RelationId small = *db.CreateRelation("Small", {"v"});
  for (uint64_t i = 0; i < 8192; ++i) {
    db.Apply(WriteOp::Insert(big, {Value::Constant(i % 128),
                                   Value::Constant(i)}),
             0);
  }
  for (uint64_t i = 0; i < 16; ++i) {
    db.Apply(WriteOp::Insert(small, {Value::Constant(i)}), 0);
  }
  TgdParser parser(&db.catalog(), &db.symbols());
  const auto q = *parser.ParseQuery("Big(v, u) & Small(v)");
  std::printf("[skew] Big(v, u) & Small(v), big=8192/domain=128 small=16\n");
  std::printf("  static: %s\n",
              Planner::Compile(q.body, 0, std::nullopt)
                  .ToString(db.catalog())
                  .c_str());
  std::printf("  stats:  %s\n",
              Planner::Compile(q.body, 0, std::nullopt, &db)
                  .ToString(db.catalog())
                  .c_str());
}

// Value-aware (heavy-hitter sketch) costing: one skewed column, two
// constants. The hot constant owns a 2048-row bucket the uniform model
// prices at ~4, so only the sketch justifies the composite index for it;
// the cold constant's tracked 2-row bucket keeps the single-column probe
// under both models. The same queries compiled with the kill switch off
// show the uniform shapes the skew_suite control arm runs under.
void ValueAwareShapes() {
  Database db;
  const RelationId z = *db.CreateRelation("Z", {"k", "tag", "n"});
  auto constant = [&](const char* prefix, size_t i) {
    return db.InternConstant(std::string(prefix) + std::to_string(i));
  };
  const Value hot = db.InternConstant("hot");
  const Value even = db.InternConstant("even");
  const Value odd = db.InternConstant("odd");
  for (uint64_t i = 0; i < 4096; ++i) {
    const Value k = i < 2048 ? hot : constant("cold", i % 1024);
    db.Apply(WriteOp::Insert(z, {k, i % 2 == 0 ? even : odd,
                                 Value::Constant(i)}),
             0);
  }
  TgdParser parser(&db.catalog(), &db.symbols());
  const auto hot_q = *parser.ParseQuery("Z('hot', 'even', n)");
  const auto cold_q = *parser.ParseQuery("Z('cold0', 'even', n)");
  std::printf(
      "[value-aware] Z(k, tag, n), rows=4096 hot-bucket=2048 domain=1025\n");
  for (const bool on : {true, false}) {
    Planner::set_sketch_costing(on);
    std::printf("  sketch %s hot:  %s\n", on ? "on " : "off",
                Planner::Compile(hot_q.body, 0, std::nullopt, &db)
                    .ToString(db.catalog())
                    .c_str());
    std::printf("  sketch %s cold: %s\n", on ? "on " : "off",
                Planner::Compile(cold_q.body, 0, std::nullopt, &db)
                    .ToString(db.catalog())
                    .c_str());
  }
  Planner::set_sketch_costing(true);
}

}  // namespace
}  // namespace youtopia

int main() {
  std::printf("# Compiled plan shapes (CI golden; see bench/plan_shapes.cc)\n");
  youtopia::Sigma3Shapes();
  youtopia::SkewShapes();
  youtopia::ValueAwareShapes();
  return 0;
}
