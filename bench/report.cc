#include "bench/report.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "ccontrol/dependency_tracker.h"

namespace youtopia {
namespace bench {

namespace {

// Emits `stages` as a JSON array on one line per stage, using `indent` for
// the array's own indentation. Empty summaries render as "[]".
void WriteStagesJson(std::ofstream& out,
                     const std::vector<StageSummary>& stages,
                     const char* indent) {
  if (stages.empty()) {
    out << "[]";
    return;
  }
  out << "[\n";
  for (size_t i = 0; i < stages.size(); ++i) {
    const StageSummary& s = stages[i];
    out << indent << "  {\"stage\": \"" << s.stage << "\", \"count\": "
        << s.count << ", \"p50_ns\": " << s.p50_ns << ", \"p90_ns\": "
        << s.p90_ns << ", \"p99_ns\": " << s.p99_ns << ", \"max_ns\": "
        << s.max_ns << "}" << (i + 1 < stages.size() ? ",\n" : "\n");
  }
  out << indent << "]";
}

}  // namespace

std::vector<StageSummary> SummarizeStages(const obs::MetricsSnapshot& snap) {
  std::vector<StageSummary> out;
  for (size_t i = 0; i < obs::kNumStages; ++i) {
    const obs::HistogramSnapshot& h = snap.stages[i];
    if (h.total == 0) continue;
    StageSummary s;
    s.stage = obs::StageName(static_cast<obs::Stage>(i));
    s.count = h.total;
    s.p50_ns = h.p50();
    s.p90_ns = h.p90();
    s.p99_ns = h.p99();
    s.max_ns = h.max;
    out.push_back(std::move(s));
  }
  return out;
}

std::string BenchJsonPath(const std::string& name) {
  std::string dir;
  if (const char* env = std::getenv("YOUTOPIA_BENCH_DIR")) dir = env;
  if (!dir.empty() && dir.back() != '/') dir += '/';
  return dir + "BENCH_" + name + ".json";
}

bool WriteExperimentJson(const std::string& name, const std::string& workload,
                         const ExperimentConfig& config,
                         const ExperimentResult& result, const Database& db) {
  const std::string path = BenchJsonPath(name);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }

  out << "{\n";
  out << "  \"name\": \"" << name << "\",\n";
  out << "  \"workload\": \"" << workload << "\",\n";
  out << "  \"config\": {\n";
  out << "    \"relations\": " << config.num_relations << ",\n";
  out << "    \"constants\": " << config.num_constants << ",\n";
  out << "    \"initial_tuples\": " << config.initial_tuples << ",\n";
  out << "    \"updates_per_run\": " << config.updates_per_run << ",\n";
  out << "    \"delete_fraction\": " << config.delete_fraction << ",\n";
  out << "    \"runs\": " << config.runs << ",\n";
  out << "    \"seed\": " << config.seed << ",\n";
  out << "    \"zipf_theta\": " << config.zipf_theta << ",\n";
  // Serial runs record workers = 1, so BENCH_ files from the sharded
  // parallel scheduler are distinguishable from serial baselines.
  out << "    \"workers\": " << config.workers << ",\n";
  out << "    \"islands\": " << config.islands << "\n";
  out << "  },\n";
  out << "  \"initial\": {\n";
  out << "    \"seed_inserts\": " << result.initial.seed_inserts << ",\n";
  out << "    \"visible_tuples\": " << result.initial.total_tuples << ",\n";
  out << "    \"chase_steps\": " << result.initial.chase_steps << "\n";
  out << "  },\n";

  out << "  \"cells\": [\n";
  bool first = true;
  for (size_t i = 0; i < result.mapping_counts.size(); ++i) {
    for (size_t t = 0; t < 3; ++t) {
      const CellStats& cell = result.cells[i][t];
      if (cell.runs == 0) continue;
      if (!first) out << ",\n";
      first = false;
      const double updates_per_second =
          cell.per_update_seconds > 0 ? 1.0 / cell.per_update_seconds : 0.0;
      out << "    {\"mappings\": " << result.mapping_counts[i]
          << ", \"tracker\": \""
          << TrackerKindName(static_cast<TrackerKind>(t)) << "\""
          << ", \"runs\": " << cell.runs << ", \"aborts\": " << cell.aborts
          << ", \"cascading_abort_requests\": "
          << cell.cascading_abort_requests
          << ", \"per_update_seconds\": " << cell.per_update_seconds
          << ", \"updates_per_second\": " << updates_per_second
          << ", \"steps\": " << cell.steps << ", \"failed\": " << cell.failed
          << "}";
    }
  }
  out << "\n  ],\n";

  // Final storage footprint: the multiversion rows and append-only index
  // entries accumulated across the whole sweep.
  size_t rows = 0, versions = 0, index_entries = 0;
  for (RelationId r = 0; r < db.num_relations(); ++r) {
    rows += db.relation(r).num_rows();
    versions += db.relation(r).num_versions();
    index_entries += db.relation(r).IndexEntryCount();
  }
  out << "  \"storage\": {\n";
  out << "    \"relations\": " << db.num_relations() << ",\n";
  out << "    \"rows\": " << rows << ",\n";
  out << "    \"versions\": " << versions << ",\n";
  out << "    \"index_entries\": " << index_entries << "\n";
  out << "  }\n";
  out << "}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "bench: failed writing %s\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "bench: wrote %s\n", path.c_str());
  return true;
}

bool WriteParallelScaleJson(const std::string& name,
                            const ExperimentConfig& config,
                            const std::vector<ParallelScalePoint>& points) {
  const std::string path = BenchJsonPath(name);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n";
  out << "  \"name\": \"" << name << "\",\n";
  // Version 4 adds per-arm stage latency summaries from the pipeline's
  // metrics registry; 3 added zipf_theta to the config block (the skew
  // axis matters now that plan costing is value-aware).
  out << "  \"schema_version\": 4,\n";
  out << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n";
  out << "  \"config\": {\n";
  out << "    \"relations\": " << config.num_relations << ",\n";
  out << "    \"mappings\": " << config.num_mappings_total << ",\n";
  out << "    \"islands\": " << config.islands << ",\n";
  out << "    \"chain_length\": " << config.chain_length << ",\n";
  out << "    \"fan_out\": " << config.fan_out << ",\n";
  out << "    \"initial_tuples\": " << config.initial_tuples << ",\n";
  out << "    \"updates_per_run\": " << config.updates_per_run << ",\n";
  out << "    \"runs\": " << config.runs << ",\n";
  out << "    \"zipf_theta\": " << config.zipf_theta << ",\n";
  out << "    \"seed\": " << config.seed << "\n";
  out << "  },\n";
  out << "  \"arms\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const ParallelScalePoint& p = points[i];
    out << "    {\"engine\": \"" << p.engine << "\", \"graph\": \""
        << p.graph << "\", \"workers\": " << p.workers
        << ", \"sub_workers\": " << p.sub_workers
        << ", \"seconds_per_run\": " << p.seconds_per_run
        << ", \"updates_per_second\": " << p.updates_per_second
        << ", \"speedup_vs_serial\": " << p.speedup_vs_serial
        << ", \"aborts\": " << p.aborts << ", \"cross_shard\": "
        << p.cross_shard << ", \"escaped\": " << p.escaped
        << ", \"intra_aborts\": " << p.intra_aborts
        << ", \"intra_redos\": " << p.intra_redos
        << ", \"intra_escalations\": " << p.intra_escalations
        << ",\n     \"stages\": ";
    WriteStagesJson(out, p.stages, "     ");
    out << "}" << (i + 1 < points.size() ? ",\n" : "\n");
  }
  out << "  ]\n";
  out << "}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "bench: failed writing %s\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "bench: wrote %s\n", path.c_str());
  return true;
}

bool WriteStreamingIngestJson(const std::string& name,
                              const ExperimentConfig& config,
                              const std::vector<StreamingIngestArm>& arms,
                              bool replay_identical) {
  const std::string path = BenchJsonPath(name);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n";
  out << "  \"name\": \"" << name << "\",\n";
  // Version 2 adds per-arm stage latency summaries; files without the
  // field are version 1.
  out << "  \"schema_version\": 2,\n";
  out << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n";
  out << "  \"config\": {\n";
  out << "    \"relations\": " << config.num_relations << ",\n";
  out << "    \"mappings\": " << config.num_mappings_total << ",\n";
  out << "    \"islands\": " << config.islands << ",\n";
  out << "    \"workers\": " << config.workers << ",\n";
  out << "    \"initial_tuples\": " << config.initial_tuples << ",\n";
  out << "    \"ops\": " << config.updates_per_run << ",\n";
  out << "    \"zipf_theta\": " << config.zipf_theta << ",\n";
  out << "    \"seed\": " << config.seed << "\n";
  out << "  },\n";
  out << "  \"replay_identical\": " << (replay_identical ? "true" : "false")
      << ",\n";
  out << "  \"arms\": [\n";
  for (size_t i = 0; i < arms.size(); ++i) {
    const StreamingIngestArm& a = arms[i];
    out << "    {\"mode\": \"" << a.mode << "\", \"offered_rate\": "
        << a.offered_rate << ", \"wall_seconds\": " << a.wall_seconds
        << ", \"sustained_rate\": " << a.sustained_rate
        << ", \"stall_p50_us\": " << a.stall_p50_us
        << ", \"stall_p99_us\": " << a.stall_p99_us
        << ", \"stall_max_us\": " << a.stall_max_us
        << ", \"admission_stall_seconds\": " << a.admission_stall_seconds
        << ", \"inbox_high_watermark\": " << a.inbox_high_watermark
        << ", \"inbox_capacity\": " << a.inbox_capacity
        << ", \"pinned\": " << a.pinned << ", \"cross_shard\": "
        << a.cross_shard << ", \"escaped\": " << a.escaped
        << ",\n     \"stages\": ";
    WriteStagesJson(out, a.stages, "     ");
    out << "}" << (i + 1 < arms.size() ? ",\n" : "\n");
  }
  out << "  ]\n";
  out << "}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "bench: failed writing %s\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "bench: wrote %s\n", path.c_str());
  return true;
}

bool WriteSkewSuiteJson(const std::string& name,
                        const ExperimentConfig& config,
                        const std::vector<SkewSuiteArm>& arms) {
  const std::string path = BenchJsonPath(name);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n";
  out << "  \"name\": \"" << name << "\",\n";
  out << "  \"schema_version\": 1,\n";
  out << "  \"config\": {\n";
  out << "    \"constants\": " << config.num_constants << ",\n";
  out << "    \"updates_per_run\": " << config.updates_per_run << ",\n";
  out << "    \"zipf_theta\": " << config.zipf_theta << ",\n";
  out << "    \"seed\": " << config.seed << "\n";
  out << "  },\n";
  out << "  \"arms\": [\n";
  for (size_t i = 0; i < arms.size(); ++i) {
    const SkewSuiteArm& a = arms[i];
    out << "    {\"graph\": \"" << a.graph << "\", \"zipf_theta\": "
        << a.zipf_theta << ", \"sketch\": " << (a.sketch ? "true" : "false")
        << ", \"rows_examined\": " << a.rows_examined
        << ", \"replans\": " << a.replans
        << ", \"committed\": " << a.committed << ", \"steps\": " << a.steps
        << ", \"seconds\": " << a.seconds << "}"
        << (i + 1 < arms.size() ? ",\n" : "\n");
  }
  out << "  ]\n";
  out << "}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "bench: failed writing %s\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "bench: wrote %s\n", path.c_str());
  return true;
}

}  // namespace bench
}  // namespace youtopia
