// Regenerates Figure 3 of the paper: NAIVE vs COARSE vs PRECISE on the
// all-insert workload — (a) total aborts, (b) cascading abort requests,
// (c) relative slowdown of PRECISE — across mapping densities 20..100.
//
// Run with --paper for the exact Section 6 parameters (10k initial tuples,
// 500 updates per run, 100 runs per point); the default is a scaled-down
// sweep preserving the figure's shape.
#include "bench/fig_common.h"

int main(int argc, char** argv) {
  bool verbose = false;
  youtopia::ExperimentConfig config =
      youtopia::bench::ParseFlags(argc, argv, &verbose);
  config.delete_fraction = 0.0;
  youtopia::ExperimentDriver driver(config);
  const youtopia::ExperimentResult result = driver.Run(verbose);
  return youtopia::bench::Report("fig3_all_insert", "Figure 3", "all-insert",
                                 config, result, driver.db())
             ? 0
             : 1;
}
