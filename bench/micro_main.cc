// Shared main for the micro_* benchmarks: identical to BENCHMARK_MAIN()
// except that, unless the caller passes --benchmark_out themselves, results
// are also written to BENCH_<binary>.json (Google Benchmark's JSON format,
// placed per bench::BenchJsonPath) so every run leaves a machine-readable
// record comparable against the checked-in baseline.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench/report.h"

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  std::string out_flag;
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    std::string name = argv[0];
    const size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name = name.substr(slash + 1);
    out_flag = "--benchmark_out=" + youtopia::bench::BenchJsonPath(name);
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
