// Microbenchmarks for the concurrency-control machinery (Section 5):
// retroactive conflict checks per read-query form, and the dependency
// computation cost of COARSE vs PRECISE (Section 5.1.2's complexity claims:
// COARSE is linear in the logged writes; PRECISE pays for joins on the
// database).
#include <benchmark/benchmark.h>

#include "ccontrol/conflict.h"
#include "ccontrol/dependency_tracker.h"
#include "ccontrol/read_log.h"
#include "ccontrol/write_log.h"
#include "relational/database.h"
#include "tgd/parser.h"
#include "util/rng.h"

namespace youtopia {
namespace {

struct Fixture {
  Database db;
  std::vector<Tgd> tgds;
  RelationId a, t, r;
  WriteLog wlog;

  explicit Fixture(size_t rows, size_t logged_writes) {
    a = *db.CreateRelation("A", {"location", "name"});
    t = *db.CreateRelation("T", {"attraction", "company", "start"});
    r = *db.CreateRelation("R", {"company", "attraction", "review"});
    TgdParser parser(&db.catalog(), &db.symbols());
    tgds.push_back(*parser.ParseTgd(
        "A(l, n) & T(n, co, s) -> exists rv: R(co, n, rv)"));
    Rng rng(3);
    auto constant = [&](const char* p, size_t i) {
      return db.InternConstant(std::string(p) + std::to_string(i));
    };
    for (size_t i = 0; i < rows; ++i) {
      db.Apply(WriteOp::Insert(a, {constant("loc", rng.Uniform(64)),
                                   constant("name", rng.Uniform(64))}),
               0);
      db.Apply(WriteOp::Insert(t, {constant("name", rng.Uniform(64)),
                                   constant("co", rng.Uniform(64)),
                                   constant("city", rng.Uniform(64))}),
               0);
    }
    // Populate the write log with writes from `logged_writes` updates.
    for (size_t i = 0; i < logged_writes; ++i) {
      auto w = db.Apply(
          WriteOp::Insert(t, {constant("name", rng.Uniform(64)),
                              constant("co", rng.Uniform(64)),
                              constant("city", rng.Uniform(64))}),
          /*update_number=*/1 + i);
      if (!w.empty()) wlog.Record(1 + i, w[0]);
    }
  }

  ReadQueryRecord ViolationRead() const {
    TupleData pinned{db.symbols().Text(Value::Constant(0)).empty()
                         ? Value::Constant(0)
                         : Value::Constant(0),
                     Value::Constant(1)};
    // Pin on the A atom (index 0) with an arbitrary existing A tuple.
    const TupleData* data = db.relation(a).VisibleData(0, kReadLatest);
    return ReadQueryRecord::Violation(0, /*pinned_on_lhs=*/true, 0,
                                      data ? *data : pinned);
  }
};

void BM_ConflictCheckViolationQuery(benchmark::State& state) {
  Fixture fix(static_cast<size_t>(state.range(0)), 16);
  ConflictChecker checker(&fix.tgds);
  Snapshot snap(&fix.db, kReadLatest);
  const ReadQueryRecord q = fix.ViolationRead();
  const WriteLog::Entry& e = fix.wlog.entries().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.Conflicts(snap, e.write, q));
  }
}
BENCHMARK(BM_ConflictCheckViolationQuery)->Range(256, 16384);

void BM_ConflictCheckCorrectionQueries(benchmark::State& state) {
  // Correction queries are decided without touching the database — the
  // check should be O(tuple width) regardless of database size.
  Fixture fix(static_cast<size_t>(state.range(0)), 16);
  ConflictChecker checker(&fix.tgds);
  Snapshot snap(&fix.db, kReadLatest);
  const Value n = Value::Null(12345);
  const ReadQueryRecord more_specific = ReadQueryRecord::MoreSpecific(
      fix.t, {fix.db.InternConstant("name1"), n, n});
  const ReadQueryRecord occurrence = ReadQueryRecord::NullOccurrence(n);
  const WriteLog::Entry& e = fix.wlog.entries().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.Conflicts(snap, e.write, more_specific));
    benchmark::DoNotOptimize(checker.Conflicts(snap, e.write, occurrence));
  }
}
BENCHMARK(BM_ConflictCheckCorrectionQueries)->Range(256, 16384);

void BM_ReadLogRecordFingerprint(benchmark::State& state) {
  // Cost of the chase's hottest read-log operation: re-recording a
  // violation query the update already logged (every revalidation re-poses
  // it; Record dedups by fingerprint). state.range(0)==1 measures the
  // plan-carried fingerprint path; 0 strips the fingerprint to force the
  // full per-field rehash the carried hash replaces.
  const bool carried = state.range(0) != 0;
  Fixture fix(256, 4);
  ReadLog log(&fix.tgds);
  ReadQueryRecord q = fix.ViolationRead();
  if (!carried) q.fingerprint = 0;
  log.Record(5, q);  // first pose: stored
  for (auto _ : state) {
    log.Record(5, q);  // steady state: fingerprint + dedup hit
  }
  benchmark::DoNotOptimize(log.total_queries());
  state.SetLabel(carried ? "plan-carried" : "rehash");
}
BENCHMARK(BM_ReadLogRecordFingerprint)->Arg(0)->Arg(1);

void BM_DependencyComputation(benchmark::State& state) {
  // COARSE vs PRECISE cost of computing read dependencies for one violation
  // query against a write log of the given size (state.range(0)).
  const bool precise = state.range(1) != 0;
  Fixture fix(2048, static_cast<size_t>(state.range(0)));
  DependencyTracker tracker(
      precise ? TrackerKind::kPrecise : TrackerKind::kCoarse, &fix.tgds);
  Snapshot snap(&fix.db, kReadLatest);
  const std::vector<ReadQueryRecord> reads{fix.ViolationRead()};
  uint64_t reader = 1u << 20;
  for (auto _ : state) {
    tracker.OnReads(snap, reader++, reads, fix.wlog);
  }
  state.SetLabel(precise ? "PRECISE" : "COARSE");
}
BENCHMARK(BM_DependencyComputation)
    ->ArgsProduct({{16, 64, 256, 1024}, {0, 1}});

}  // namespace
}  // namespace youtopia

// main() lives in bench/micro_main.cc, which also emits BENCH_<name>.json.
