// Microbenchmarks for the conjunctive-query executor and the violation
// queries (Section 4.2): plan-driven evaluation cost vs relation size,
// composite-index probes vs single-column fallbacks, and the cost of the
// NOT EXISTS check. Plans are compiled once per benchmark (the production
// pattern: cached per tgd at mapping registration) and executed many times.
#include <benchmark/benchmark.h>

#include "core/violation_detector.h"
#include "query/evaluator.h"
#include "query/plan.h"
#include "relational/database.h"
#include "tgd/parser.h"
#include "util/rng.h"

namespace youtopia {
namespace {

struct JoinFixture {
  Database db;
  std::vector<Tgd> tgds;
  RelationId a, t, r;

  explicit JoinFixture(size_t rows, size_t domain) {
    a = *db.CreateRelation("A", {"location", "name"});
    t = *db.CreateRelation("T", {"attraction", "company", "start"});
    r = *db.CreateRelation("R", {"company", "attraction", "review"});
    TgdParser parser(&db.catalog(), &db.symbols());
    tgds.push_back(*parser.ParseTgd(
        "A(l, n) & T(n, co, s) -> exists rv: R(co, n, rv)"));
    Rng rng(7);
    auto constant = [&](const char* prefix, size_t i) {
      return db.InternConstant(std::string(prefix) + std::to_string(i));
    };
    for (size_t i = 0; i < rows; ++i) {
      const size_t name = rng.Uniform(domain);
      db.Apply(WriteOp::Insert(
                   a, {constant("loc", rng.Uniform(domain)),
                       constant("name", name)}),
               0);
      db.Apply(WriteOp::Insert(t, {constant("name", name),
                                   constant("co", rng.Uniform(domain)),
                                   constant("city", rng.Uniform(domain))}),
               0);
    }
    // What AddMapping / the scheduler do at registration time: build the
    // composite indexes the compiled plans probe.
    for (const Tgd& tgd : tgds) EnsureTgdPlanIndexes(&db, tgd.plans());
  }
};

void BM_TwoWayJoin(benchmark::State& state) {
  JoinFixture fix(static_cast<size_t>(state.range(0)), 64);
  TgdParser parser(&fix.db.catalog(), &fix.db.symbols());
  const auto q = *parser.ParseQuery("A(l, n) & T(n, co, s)");
  const QueryPlan plan = Planner::Compile(q.body, 0, std::nullopt);
  EnsurePlanIndexes(&fix.db, plan);
  Snapshot snap(&fix.db, kReadLatest);
  size_t results = 0;
  for (auto _ : state) {
    Evaluator eval(snap);
    eval.ForEachMatch(plan, Binding(), nullptr,
                      [&](const Binding&, const std::vector<TupleRef>&) {
                        ++results;
                        return true;
                      });
  }
  benchmark::DoNotOptimize(results);
  state.SetItemsProcessed(static_cast<int64_t>(results));
}
BENCHMARK(BM_TwoWayJoin)->Range(64, 16384);

void BM_PinnedDeltaEvaluation(benchmark::State& state) {
  // The violation query form: LHS with the new tuple pinned in.
  JoinFixture fix(static_cast<size_t>(state.range(0)), 64);
  TgdParser parser(&fix.db.catalog(), &fix.db.symbols());
  const auto q = *parser.ParseQuery("A(l, n) & T(n, co, s)");
  const QueryPlan plan = Planner::Compile(q.body, 0, /*pinned_atom=*/1);
  EnsurePlanIndexes(&fix.db, plan);
  Snapshot snap(&fix.db, kReadLatest);
  const TupleData pinned{fix.db.InternConstant("name1"),
                         fix.db.InternConstant("co2"),
                         fix.db.InternConstant("city3")};
  size_t results = 0;
  for (auto _ : state) {
    Evaluator eval(snap);
    AtomPin pin{1, 0, &pinned};
    eval.ForEachMatch(plan, Binding(), &pin,
                      [&](const Binding&, const std::vector<TupleRef>&) {
                        ++results;
                        return true;
                      });
  }
  benchmark::DoNotOptimize(results);
}
BENCHMARK(BM_PinnedDeltaEvaluation)->Range(64, 16384);

void BM_ViolationQueryAfterInsert(benchmark::State& state) {
  // Full violation query (LHS and NOT EXISTS RHS) for one written tuple,
  // executed through the tgd's cached plan complement.
  JoinFixture fix(static_cast<size_t>(state.range(0)), 64);
  ViolationDetector detector(&fix.tgds);
  Snapshot snap(&fix.db, kReadLatest);
  PhysicalWrite w;
  w.kind = WriteKind::kInsert;
  w.rel = fix.t;
  w.row = 0;
  w.data = {fix.db.InternConstant("name1"), fix.db.InternConstant("co2"),
            fix.db.InternConstant("city3")};
  for (auto _ : state) {
    std::vector<Violation> viols;
    detector.AfterWrite(snap, w, &viols, nullptr);
    benchmark::DoNotOptimize(viols);
  }
}
BENCHMARK(BM_ViolationQueryAfterInsert)->Range(64, 16384);

void BM_FullSatisfactionScan(benchmark::State& state) {
  JoinFixture fix(static_cast<size_t>(state.range(0)), 64);
  ViolationDetector detector(&fix.tgds);
  Snapshot snap(&fix.db, kReadLatest);
  for (auto _ : state) {
    std::vector<Violation> viols;
    detector.FindAll(snap, &viols);
    benchmark::DoNotOptimize(viols);
  }
}
BENCHMARK(BM_FullSatisfactionScan)->Range(64, 4096);

void BM_AdHocPlanCompilation(benchmark::State& state) {
  // The cost the plan cache saves per execution: compiling the two-way-join
  // plan from scratch (the seed evaluator effectively paid a comparable
  // re-planning tax inside every recursion node).
  JoinFixture fix(64, 64);
  TgdParser parser(&fix.db.catalog(), &fix.db.symbols());
  const auto q = *parser.ParseQuery("A(l, n) & T(n, co, s)");
  for (auto _ : state) {
    QueryPlan plan = Planner::Compile(q.body, 0, std::nullopt);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_AdHocPlanCompilation);

}  // namespace
}  // namespace youtopia

// main() lives in bench/micro_main.cc, which also emits BENCH_<name>.json.
