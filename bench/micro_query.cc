// Microbenchmarks for the conjunctive-query executor and the violation
// queries (Section 4.2): plan-driven evaluation cost vs relation size,
// composite-index probes vs single-column fallbacks, and the cost of the
// NOT EXISTS check. Plans are compiled once per benchmark (the production
// pattern: cached per tgd at mapping registration) and executed many times.
#include <benchmark/benchmark.h>

#include "core/violation_detector.h"
#include "query/evaluator.h"
#include "query/plan.h"
#include "relational/database.h"
#include "tgd/parser.h"
#include "util/rng.h"

namespace youtopia {
namespace {

struct JoinFixture {
  Database db;
  std::vector<Tgd> tgds;
  RelationId a, t, r;

  explicit JoinFixture(size_t rows, size_t domain) {
    a = *db.CreateRelation("A", {"location", "name"});
    t = *db.CreateRelation("T", {"attraction", "company", "start"});
    r = *db.CreateRelation("R", {"company", "attraction", "review"});
    TgdParser parser(&db.catalog(), &db.symbols());
    tgds.push_back(*parser.ParseTgd(
        "A(l, n) & T(n, co, s) -> exists rv: R(co, n, rv)"));
    Rng rng(7);
    auto constant = [&](const char* prefix, size_t i) {
      return db.InternConstant(std::string(prefix) + std::to_string(i));
    };
    for (size_t i = 0; i < rows; ++i) {
      const size_t name = rng.Uniform(domain);
      db.Apply(WriteOp::Insert(
                   a, {constant("loc", rng.Uniform(domain)),
                       constant("name", name)}),
               0);
      db.Apply(WriteOp::Insert(t, {constant("name", name),
                                   constant("co", rng.Uniform(domain)),
                                   constant("city", rng.Uniform(domain))}),
               0);
    }
    // What AddMapping / the scheduler do at registration time: build the
    // composite indexes the compiled plans probe.
    for (const Tgd& tgd : tgds) EnsureTgdPlanIndexes(&db, tgd.plans());
  }
};

void BM_TwoWayJoin(benchmark::State& state) {
  JoinFixture fix(static_cast<size_t>(state.range(0)), 64);
  TgdParser parser(&fix.db.catalog(), &fix.db.symbols());
  const auto q = *parser.ParseQuery("A(l, n) & T(n, co, s)");
  const QueryPlan plan = Planner::Compile(q.body, 0, std::nullopt);
  EnsurePlanIndexes(&fix.db, plan);
  Snapshot snap(&fix.db, kReadLatest);
  size_t results = 0;
  for (auto _ : state) {
    Evaluator eval(snap);
    eval.ForEachMatch(plan, Binding(), nullptr,
                      [&](const Binding&, const std::vector<TupleRef>&) {
                        ++results;
                        return true;
                      });
  }
  benchmark::DoNotOptimize(results);
  state.SetItemsProcessed(static_cast<int64_t>(results));
}
BENCHMARK(BM_TwoWayJoin)->Range(64, 16384);

void BM_PinnedDeltaEvaluation(benchmark::State& state) {
  // The violation query form: LHS with the new tuple pinned in.
  JoinFixture fix(static_cast<size_t>(state.range(0)), 64);
  TgdParser parser(&fix.db.catalog(), &fix.db.symbols());
  const auto q = *parser.ParseQuery("A(l, n) & T(n, co, s)");
  const QueryPlan plan = Planner::Compile(q.body, 0, /*pinned_atom=*/1);
  EnsurePlanIndexes(&fix.db, plan);
  Snapshot snap(&fix.db, kReadLatest);
  const TupleData pinned{fix.db.InternConstant("name1"),
                         fix.db.InternConstant("co2"),
                         fix.db.InternConstant("city3")};
  size_t results = 0;
  for (auto _ : state) {
    Evaluator eval(snap);
    AtomPin pin{1, 0, &pinned};
    eval.ForEachMatch(plan, Binding(), &pin,
                      [&](const Binding&, const std::vector<TupleRef>&) {
                        ++results;
                        return true;
                      });
  }
  benchmark::DoNotOptimize(results);
}
BENCHMARK(BM_PinnedDeltaEvaluation)->Range(64, 16384);

void BM_ViolationQueryAfterInsert(benchmark::State& state) {
  // Full violation query (LHS and NOT EXISTS RHS) for one written tuple,
  // executed through the tgd's cached plan complement.
  JoinFixture fix(static_cast<size_t>(state.range(0)), 64);
  ViolationDetector detector(&fix.tgds);
  Snapshot snap(&fix.db, kReadLatest);
  PhysicalWrite w;
  w.kind = WriteKind::kInsert;
  w.rel = fix.t;
  w.row = 0;
  w.data = {fix.db.InternConstant("name1"), fix.db.InternConstant("co2"),
            fix.db.InternConstant("city3")};
  for (auto _ : state) {
    std::vector<Violation> viols;
    detector.AfterWrite(snap, w, &viols, nullptr);
    benchmark::DoNotOptimize(viols);
  }
}
BENCHMARK(BM_ViolationQueryAfterInsert)->Range(64, 16384);

void BM_FullSatisfactionScan(benchmark::State& state) {
  JoinFixture fix(static_cast<size_t>(state.range(0)), 64);
  ViolationDetector detector(&fix.tgds);
  Snapshot snap(&fix.db, kReadLatest);
  for (auto _ : state) {
    std::vector<Violation> viols;
    detector.FindAll(snap, &viols);
    benchmark::DoNotOptimize(viols);
  }
}
BENCHMARK(BM_FullSatisfactionScan)->Range(64, 4096);

void BM_PlannerStatsOrdering(benchmark::State& state) {
  // The skewed join where the static boundness order is pathological — the
  // selective atom comes last. Big(v, u): 8192 rows whose join column v
  // ranges over a 128-value domain (buckets of 64); Small(v): 16 distinct
  // rows. Arg 0 executes the static-boundness plan (scan Big, probe Small);
  // arg 1 the cost-based plan from live statistics (scan Small, probe Big).
  Database db;
  const RelationId big = *db.CreateRelation("Big", {"v", "u"});
  const RelationId small = *db.CreateRelation("Small", {"v"});
  for (uint64_t i = 0; i < 8192; ++i) {
    db.Apply(WriteOp::Insert(big, {Value::Constant(i % 128),
                                   Value::Constant(i)}),
             0);
  }
  for (uint64_t i = 0; i < 16; ++i) {
    db.Apply(WriteOp::Insert(small, {Value::Constant(i)}), 0);
  }
  TgdParser parser(&db.catalog(), &db.symbols());
  const auto q = *parser.ParseQuery("Big(v, u) & Small(v)");
  const QueryPlan plan =
      state.range(0) == 0
          ? Planner::Compile(q.body, 0, std::nullopt)
          : Planner::Compile(q.body, 0, std::nullopt, &db);
  Snapshot snap(&db, kReadLatest);
  Evaluator eval(snap);
  size_t results = 0;
  for (auto _ : state) {
    eval.ForEachMatch(plan, Binding(), nullptr,
                      [&](const Binding&, const std::vector<TupleRef>&) {
                        ++results;
                        return true;
                      });
  }
  benchmark::DoNotOptimize(results);
  state.SetLabel(state.range(0) == 0 ? "static" : "stats");
}
BENCHMARK(BM_PlannerStatsOrdering)->Arg(0)->Arg(1);

void BM_ReplanTrigger(benchmark::State& state) {
  // The two prices of adaptive re-planning. Arg 0: the staleness poll the
  // chase pays every step when nothing drifted (a few integer compares per
  // mapping). Arg 1: an actual recompilation of the full plan complement
  // (what a fired trigger costs).
  JoinFixture fix(1024, 64);
  const Tgd& tgd = fix.tgds[0];
  tgd.MaybeReplan(&fix.db);  // settle: stamps match current cardinalities
  if (state.range(0) == 0) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(tgd.MaybeReplan(&fix.db));
    }
    state.SetLabel("poll-fresh");
  } else {
    for (auto _ : state) {
      fix.tgds[0].RecompilePlans(&fix.db);
      benchmark::DoNotOptimize(fix.tgds[0].plans().lhs_full.steps.size());
    }
    state.SetLabel("recompile");
  }
}
BENCHMARK(BM_ReplanTrigger)->Arg(0)->Arg(1);

void BM_AdHocPlanCompilation(benchmark::State& state) {
  // The cost the plan cache saves per execution: compiling the two-way-join
  // plan from scratch (the seed evaluator effectively paid a comparable
  // re-planning tax inside every recursion node).
  JoinFixture fix(64, 64);
  TgdParser parser(&fix.db.catalog(), &fix.db.symbols());
  const auto q = *parser.ParseQuery("A(l, n) & T(n, co, s)");
  for (auto _ : state) {
    QueryPlan plan = Planner::Compile(q.body, 0, std::nullopt);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_AdHocPlanCompilation);

}  // namespace
}  // namespace youtopia

// main() lives in bench/micro_main.cc, which also emits BENCH_<name>.json.
