// Open-loop streaming driver for the standing ingest pipeline
// (ccontrol/parallel/ingest_pipeline.h): instead of the closed-loop
// submit-everything-then-drain story of bench/parallel_scale, ops are
// offered at a target rate against a long-lived pipeline whose workers park
// on bounded inboxes, and the interesting numbers are what a service
// operator would watch:
//
//   * sustained throughput — retired ops per wall second under continuous
//     admission (the Flush barrier closes the measurement window);
//   * admission-stall p50/p99 — producer-observed time per Submit,
//     including any time blocked on a full inbox (the backpressure signal);
//   * inbox high-watermark — memory stays bounded: credit-path admission
//     can never push a shard inbox past its configured capacity.
//
// Two arms: "unbounded" submits as fast as admission allows (a closed loop
// that saturates the inboxes and exercises real producer blocking), then
// "paced" offers ops at half the measured unbounded rate on an open-loop
// schedule (sleep-until timestamps; a service running below capacity, where
// stalls should collapse to routing cost).
//
// Correctness rides along: the last arm's committed ops are replayed
// serially, in final priority-number order, on the rewound repository; the
// final instances must match byte for byte (mappings are generated with
// p_frontier = 1 so chases introduce no labeled nulls, and the per-worker
// agents are MinContentAgents — decisions are pure functions of visible
// state — so the serialization-order guarantee of Theorem 4.4 makes the
// replay literally identical, not merely isomorphic).
//
// Flags are fig_common's (--relations, --islands, --workers, --updates,
// --zipf, ...). A full-size run:
//   streaming_ingest --relations=64 --islands=8 --initial=2000
//                    --updates=20000 --workers=8
//
// Observability hooks: each arm runs against its own obs::MetricsRegistry
// and lands its per-stage latency percentiles (submit, inbox-wait,
// admission, chase, commit, ...) in the JSON's `stages` block. Setting
// YOUTOPIA_TRACE=<path> enables the global tracer for the whole run and
// dumps a Chrome trace-event / Perfetto JSON there at exit (validated by
// tools/check_trace.py in CI).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/fig_common.h"
#include "ccontrol/parallel/ingest_pipeline.h"
#include "core/update.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/tuple.h"

namespace youtopia {
namespace {

std::unique_ptr<FrontierAgent> MinContentFactory(size_t) {
  return std::make_unique<MinContentAgent>();
}

// Sorted rendering of every relation's visible tuples; byte-identical
// across runs iff the final instances are literally equal.
std::string DumpAll(const Database& db) {
  std::string out;
  Snapshot snap(&db, kReadLatest);
  for (RelationId r = 0; r < db.num_relations(); ++r) {
    std::vector<std::string> rows;
    snap.ForEachVisible(r, [&](RowId, const TupleData& t) {
      rows.push_back(TupleToString(t, db.symbols()));
    });
    std::sort(rows.begin(), rows.end());
    out += db.catalog().schema(r).name + ":";
    for (const std::string& s : rows) out += " " + s + ";";
    out += "\n";
  }
  return out;
}

double PercentileUs(std::vector<double>* sorted_us, double q) {
  if (sorted_us->empty()) return 0;
  const size_t idx = std::min(
      sorted_us->size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_us->size())));
  return (*sorted_us)[idx];
}

// Runs one arm: a fresh pipeline over the rewound repository, ops offered
// at `rate` ops/sec (0 = closed loop). Fills `arm` and, when `committed` is
// non-null, leaves the arm's committed ops in final number order there.
void RunArm(Database* db, const std::vector<Tgd>* tgds,
            const ExperimentConfig& config, const std::vector<WriteOp>& ops,
            double rate, bench::StreamingIngestArm* arm,
            std::vector<WriteOp>* committed) {
  db->RemoveVersionsAbove(0);  // rewind to the initial repository

  // Per-arm registry (declared before the pipeline: workers record into it
  // until the pipeline's destructor joins them).
  obs::MetricsRegistry metrics;

  IngestOptions popts;
  popts.num_workers = config.workers;
  popts.tracker = TrackerKind::kCoarse;
  popts.max_steps_per_update = config.max_steps_per_update;
  popts.max_attempts_per_update = config.max_attempts_per_update;
  popts.agent_factory = MinContentFactory;
  popts.inbox_capacity = 256;
  popts.metrics = &metrics;
  IngestPipeline pipeline(db, tgds, popts);

  std::vector<double> stalls_us;
  stalls_us.reserve(ops.size());
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < ops.size(); ++i) {
    if (rate > 0) {
      // Open loop: op i is due at start + i/rate regardless of how long
      // earlier admissions took; a producer running behind does not thin
      // the offered load, it catches up.
      const auto due =
          start + std::chrono::nanoseconds(static_cast<uint64_t>(
                      1e9 * static_cast<double>(i) / rate));
      std::this_thread::sleep_until(due);
    }
    const auto t0 = std::chrono::steady_clock::now();
    const SubmitResult r = pipeline.Submit(ops[i]);
    const auto t1 = std::chrono::steady_clock::now();
    CHECK(r == SubmitResult::kOk);
    stalls_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  const ParallelStats stats = pipeline.Flush();
  arm->wall_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();

  arm->offered_rate = rate;
  arm->sustained_rate =
      arm->wall_seconds > 0
          ? static_cast<double>(ops.size()) / arm->wall_seconds
          : 0;
  std::sort(stalls_us.begin(), stalls_us.end());
  arm->stall_p50_us = PercentileUs(&stalls_us, 0.50);
  arm->stall_p99_us = PercentileUs(&stalls_us, 0.99);
  arm->stall_max_us = stalls_us.empty() ? 0 : stalls_us.back();
  arm->admission_stall_seconds = stats.admission_stall_seconds;
  arm->inbox_high_watermark = stats.inbox_high_watermark;
  arm->inbox_capacity = popts.inbox_capacity;
  arm->pinned = stats.pinned_updates;
  arm->cross_shard = stats.cross_shard_updates;
  arm->escaped = stats.escaped_updates;
  arm->stages = bench::SummarizeStages(metrics.Snapshot());

  // Bounded memory: credit-path admission never overfills a shard inbox.
  CHECK_LE(stats.inbox_high_watermark, popts.inbox_capacity);
  CHECK_EQ(stats.totals.updates_failed, 0u);

  if (committed != nullptr) *committed = pipeline.CommittedOpsInOrder();
}

int Run(int argc, char** argv) {
  ExperimentConfig defaults;
  defaults.num_relations = 40;
  defaults.num_constants = 50;
  defaults.num_mappings_total = 56;
  defaults.mapping_counts = {56};
  defaults.initial_tuples = 300;
  defaults.updates_per_run = 4000;
  defaults.runs = 1;
  defaults.seed = 1;
  defaults.islands = 8;
  defaults.workers = 4;
  bool verbose = false;
  ExperimentConfig config =
      bench::ParseFlagsOver(std::move(defaults), argc, argv, &verbose);
  config.num_mappings_total = config.mapping_counts.back();
  config.delete_fraction = 0.0;

  // YOUTOPIA_TRACE=<path>: trace the whole run (all arms) and dump a
  // Chrome trace-event JSON at exit.
  const char* trace_path = std::getenv("YOUTOPIA_TRACE");
  if (trace_path != nullptr) obs::Tracer::Global().SetEnabled(true);

  Database db;
  Rng rng(config.seed);
  SchemaGenOptions schema_opts;
  schema_opts.num_relations = config.num_relations;
  CHECK(GenerateSchema(&db, &rng, schema_opts).ok());
  const std::vector<Value> constants =
      GenerateConstantPool(&db, &rng, config.num_constants);
  MappingGenOptions mapping_opts;
  mapping_opts.count = config.num_mappings_total;
  mapping_opts.num_islands = config.islands;
  mapping_opts.zipf_theta = config.zipf_theta;
  // No existential RHS positions: chases stay null-free, which is what lets
  // the serial replay below demand byte equality instead of isomorphism.
  // p_frontier = 1 alone is not enough — when every LHS variable is already
  // used in the atom, the generator falls back to a fresh existential, so
  // within-atom repeats must be allowed unconditionally too.
  mapping_opts.p_frontier = 1.0;
  mapping_opts.p_within_atom_repeat = 1.0;
  const std::vector<Tgd> tgds =
      GenerateMappings(db, constants, &rng, mapping_opts);

  InitialDataOptions data_opts;
  data_opts.num_tuples = config.initial_tuples;
  data_opts.max_steps_per_insert = config.initial_chase_step_cap;
  MinContentAgent seed_agent;
  const InitialDataReport initial = GenerateInitialData(
      &db, &tgds, constants, &rng, &seed_agent, data_opts);

  WorkloadOptions wl_opts;
  wl_opts.num_updates = config.updates_per_run;
  wl_opts.delete_fraction = config.delete_fraction;
  wl_opts.zipf_theta = config.zipf_theta;
  Rng wl_rng(config.seed + 1000003);
  const std::vector<WriteOp> ops =
      GenerateWorkload(&db, constants, &wl_rng, wl_opts);

  std::printf(
      "=== streaming_ingest ===\n"
      "config: relations=%zu mappings=%zu islands=%zu workers=%zu "
      "initial=%zu ops=%zu zipf=%.2f seed=%llu\n",
      config.num_relations, config.num_mappings_total, config.islands,
      config.workers, initial.total_tuples, ops.size(), config.zipf_theta,
      static_cast<unsigned long long>(config.seed));

  std::vector<bench::StreamingIngestArm> arms(2);
  arms[0].mode = "unbounded";
  RunArm(&db, &tgds, config, ops, /*rate=*/0, &arms[0], nullptr);

  // The paced arm offers half the measured capacity — the "service below
  // saturation" regime where admission stalls should be routing-only.
  arms[1].mode = "paced";
  std::vector<WriteOp> committed;
  RunArm(&db, &tgds, config, ops, /*rate=*/arms[0].sustained_rate * 0.5,
         &arms[1], &committed);

  // Committed-op replay check: the paced arm's final instance must equal a
  // serial re-execution of its committed ops in priority-number order.
  const std::string streamed_dump = DumpAll(db);
  CHECK_EQ(committed.size(), ops.size());
  db.RemoveVersionsAbove(0);
  MinContentAgent replay_agent;
  uint64_t number = 1;
  for (const WriteOp& op : committed) {
    Update u(number++, op, &tgds);
    u.RunToCompletion(&db, &replay_agent);
  }
  const std::string replay_dump = DumpAll(db);
  const bool replay_identical = replay_dump == streamed_dump;
  if (!replay_identical && std::getenv("YOUTOPIA_STREAMING_DEBUG")) {
    std::ofstream("/tmp/streamed.txt") << streamed_dump;
    std::ofstream("/tmp/replayed.txt") << replay_dump;
  }
  CHECK(replay_identical);
  db.RemoveVersionsAbove(0);

  std::printf("%10s %14s %14s %12s %12s %12s %10s\n", "mode", "offered/s",
              "sustained/s", "p50 us", "p99 us", "max us", "inbox hwm");
  for (const bench::StreamingIngestArm& a : arms) {
    std::printf("%10s %14.1f %14.1f %12.1f %12.1f %12.1f %7zu/%zu\n",
                a.mode.c_str(), a.offered_rate, a.sustained_rate,
                a.stall_p50_us, a.stall_p99_us, a.stall_max_us,
                a.inbox_high_watermark, a.inbox_capacity);
  }
  std::printf("replay check: byte-identical=%s\n",
              replay_identical ? "yes" : "NO");

  if (trace_path != nullptr) {
    obs::Tracer::Global().SetEnabled(false);
    if (!obs::Tracer::Global().DumpJson(trace_path)) {
      std::fprintf(stderr, "trace: cannot write %s\n", trace_path);
      return 1;
    }
    std::printf("trace: wrote %s\n", trace_path);
  }

  return bench::WriteStreamingIngestJson("streaming_ingest", config, arms,
                                         replay_identical)
             ? 0
             : 1;
}

}  // namespace
}  // namespace youtopia

int main(int argc, char** argv) { return youtopia::Run(argc, argv); }
