// Microbenchmarks for the MVCC storage engine: insert/read throughput,
// version-chain visibility resolution, index lookup vs full scan, and abort
// undo cost.
#include <benchmark/benchmark.h>

#include "relational/database.h"
#include "util/rng.h"

namespace youtopia {
namespace {

void BM_Insert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    const RelationId rel = *db.CreateRelation("R", {"a", "b", "c"});
    Rng rng(1);
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      db.Apply(WriteOp::Insert(rel, {Value::Constant(rng.Uniform(1u << 20)),
                                     Value::Constant(rng.Uniform(64)),
                                     Value::Constant(rng.Uniform(64))}),
               0);
    }
    benchmark::DoNotOptimize(db.CountVisible(0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Insert)->Range(1024, 65536);

void BM_IndexLookup(benchmark::State& state) {
  Database db;
  const RelationId rel = *db.CreateRelation("R", {"a", "b"});
  Rng rng(1);
  const size_t n = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < n; ++i) {
    db.Apply(WriteOp::Insert(rel, {Value::Constant(i % 256),
                                   Value::Constant(i)}),
             0);
  }
  size_t hits = 0;
  for (auto _ : state) {
    std::vector<RowId> rows;
    db.relation(rel).CandidateRows(0, Value::Constant(rng.Uniform(256)),
                                   &rows);
    hits += rows.size();
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_IndexLookup)->Range(1024, 65536);

void BM_VisibilityWithDeepVersionChains(benchmark::State& state) {
  // One row modified by many successive updates (null replacement chains);
  // visibility must pick the right version for a mid-chain reader.
  Database db;
  const RelationId rel = *db.CreateRelation("R", {"a"});
  Value cur = db.FreshNull();
  auto w = db.Apply(WriteOp::Insert(rel, {cur}), 0);
  const RowId row = w[0].row;
  const uint64_t chain = static_cast<uint64_t>(state.range(0));
  for (uint64_t u = 1; u <= chain; ++u) {
    const Value next = db.FreshNull();
    db.Apply(WriteOp::NullReplace(cur, next), u);
    cur = next;
  }
  for (auto _ : state) {
    const TupleData* data = db.relation(rel).VisibleData(row, chain / 2 + 1);
    benchmark::DoNotOptimize(data);
  }
}
BENCHMARK(BM_VisibilityWithDeepVersionChains)->Range(8, 512);

void BM_CompositeIndexLookup(benchmark::State& state) {
  // Composite-key probe vs the single-column buckets it replaces: column 0
  // has 256 distinct values, column 1 has 64, the pair is far more
  // selective than either.
  Database db;
  const RelationId rel = *db.CreateRelation("R", {"a", "b"});
  Rng rng(1);
  const size_t n = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < n; ++i) {
    db.Apply(WriteOp::Insert(rel, {Value::Constant(i % 256),
                                   Value::Constant(i % 64)}),
             0);
  }
  db.mutable_relation(rel).EnsureCompositeIndex({0, 1});
  size_t hits = 0;
  for (auto _ : state) {
    std::vector<RowId> rows;
    db.relation(rel).CandidateRowsComposite(
        {0, 1},
        {Value::Constant(rng.Uniform(256)), Value::Constant(rng.Uniform(64))},
        &rows);
    hits += rows.size();
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_CompositeIndexLookup)->Range(1024, 65536);

void BM_IndexEntryDriftUnderAborts(benchmark::State& state) {
  // The append-only indexes strand entries whenever an update's versions
  // are removed (abort undo). Measures the removal + threshold-compaction
  // cost and reports the drift the compaction pass reclaims.
  const size_t base_rows = static_cast<size_t>(state.range(0));
  double drift_before = 0;
  double drift_after = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    const RelationId rel = *db.CreateRelation("R", {"a", "b"});
    for (size_t i = 0; i < base_rows; ++i) {
      db.Apply(WriteOp::Insert(rel, {Value::Constant(i % 97),
                                     Value::Constant(i)}),
               0);
    }
    const size_t entries_live = db.relation(rel).IndexEntryCount();
    // An aborting update writes half the base volume — enough strand to
    // cross the threshold that triggers compaction on removal.
    for (size_t i = 0; i < base_rows / 2; ++i) {
      db.Apply(WriteOp::Insert(rel, {Value::Constant(i % 97),
                                     Value::Constant(base_rows + i)}),
               9);
    }
    drift_before +=
        static_cast<double>(db.relation(rel).IndexEntryCount() - entries_live);
    state.ResumeTiming();
    db.RemoveVersionsOf(9);  // triggers threshold compaction
    state.PauseTiming();
    drift_after +=
        static_cast<double>(db.relation(rel).IndexEntryCount()) -
        static_cast<double>(entries_live);
    state.ResumeTiming();
  }
  state.counters["drift_entries_before_compact"] =
      benchmark::Counter(drift_before, benchmark::Counter::kAvgIterations);
  state.counters["drift_entries_after_compact"] =
      benchmark::Counter(drift_after, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_IndexEntryDriftUnderAborts)->Range(1024, 16384);

void BM_AbortUndoTargeted(benchmark::State& state) {
  // Cost of undoing one update's writes via targeted row removal.
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    const RelationId rel = *db.CreateRelation("R", {"a", "b"});
    for (int64_t i = 0; i < state.range(0); ++i) {
      db.Apply(WriteOp::Insert(rel, {Value::Constant(static_cast<uint64_t>(i)),
                                     Value::Constant(1)}),
               0);
    }
    std::vector<std::pair<RelationId, RowId>> written;
    for (int i = 0; i < 64; ++i) {
      auto w = db.Apply(
          WriteOp::Insert(rel, {Value::Constant(static_cast<uint64_t>(i)),
                                Value::Constant(2)}),
          9);
      if (!w.empty()) written.push_back({w[0].rel, w[0].row});
    }
    state.ResumeTiming();
    for (const auto& [r, row] : written) db.RemoveRowVersions(r, row, 9);
    benchmark::DoNotOptimize(db.CountVisible(kReadLatest));
  }
}
BENCHMARK(BM_AbortUndoTargeted)->Range(1024, 65536);

}  // namespace
}  // namespace youtopia

// main() lives in bench/micro_main.cc, which also emits BENCH_<name>.json.
