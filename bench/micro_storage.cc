// Microbenchmarks for the MVCC storage engine: insert/read throughput,
// version-chain visibility resolution, index lookup vs full scan, and abort
// undo cost.
#include <benchmark/benchmark.h>

#include "relational/database.h"
#include "util/rng.h"

namespace youtopia {
namespace {

void BM_Insert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    const RelationId rel = *db.CreateRelation("R", {"a", "b", "c"});
    Rng rng(1);
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      db.Apply(WriteOp::Insert(rel, {Value::Constant(rng.Uniform(1u << 20)),
                                     Value::Constant(rng.Uniform(64)),
                                     Value::Constant(rng.Uniform(64))}),
               0);
    }
    benchmark::DoNotOptimize(db.CountVisible(0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Insert)->Range(1024, 65536);

void BM_IndexLookup(benchmark::State& state) {
  Database db;
  const RelationId rel = *db.CreateRelation("R", {"a", "b"});
  Rng rng(1);
  const size_t n = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < n; ++i) {
    db.Apply(WriteOp::Insert(rel, {Value::Constant(i % 256),
                                   Value::Constant(i)}),
             0);
  }
  size_t hits = 0;
  for (auto _ : state) {
    std::vector<RowId> rows;
    db.relation(rel).CandidateRows(0, Value::Constant(rng.Uniform(256)),
                                   &rows);
    hits += rows.size();
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_IndexLookup)->Range(1024, 65536);

void BM_VisibilityWithDeepVersionChains(benchmark::State& state) {
  // One row modified by many successive updates (null replacement chains);
  // visibility must pick the right version for a mid-chain reader.
  Database db;
  const RelationId rel = *db.CreateRelation("R", {"a"});
  Value cur = db.FreshNull();
  auto w = db.Apply(WriteOp::Insert(rel, {cur}), 0);
  const RowId row = w[0].row;
  const uint64_t chain = static_cast<uint64_t>(state.range(0));
  for (uint64_t u = 1; u <= chain; ++u) {
    const Value next = db.FreshNull();
    db.Apply(WriteOp::NullReplace(cur, next), u);
    cur = next;
  }
  for (auto _ : state) {
    const TupleData* data = db.relation(rel).VisibleData(row, chain / 2 + 1);
    benchmark::DoNotOptimize(data);
  }
}
BENCHMARK(BM_VisibilityWithDeepVersionChains)->Range(8, 512);

void BM_AbortUndoTargeted(benchmark::State& state) {
  // Cost of undoing one update's writes via targeted row removal.
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    const RelationId rel = *db.CreateRelation("R", {"a", "b"});
    for (int64_t i = 0; i < state.range(0); ++i) {
      db.Apply(WriteOp::Insert(rel, {Value::Constant(static_cast<uint64_t>(i)),
                                     Value::Constant(1)}),
               0);
    }
    std::vector<std::pair<RelationId, RowId>> written;
    for (int i = 0; i < 64; ++i) {
      auto w = db.Apply(
          WriteOp::Insert(rel, {Value::Constant(static_cast<uint64_t>(i)),
                                Value::Constant(2)}),
          9);
      if (!w.empty()) written.push_back({w[0].rel, w[0].row});
    }
    state.ResumeTiming();
    for (const auto& [r, row] : written) db.RemoveRowVersions(r, row, 9);
    benchmark::DoNotOptimize(db.CountVisible(kReadLatest));
  }
}
BENCHMARK(BM_AbortUndoTargeted)->Range(1024, 65536);

}  // namespace
}  // namespace youtopia

// main() lives in bench/micro_main.cc, which also emits BENCH_<name>.json.
