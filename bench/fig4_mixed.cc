// Regenerates Figure 4 of the paper: the mixed workload (80% inserts, 20%
// deletes) — (a) total aborts, (b) cascading abort requests, (c) relative
// slowdown of PRECISE — across mapping densities 20..100.
#include "bench/fig_common.h"

int main(int argc, char** argv) {
  bool verbose = false;
  youtopia::ExperimentConfig config =
      youtopia::bench::ParseFlags(argc, argv, &verbose);
  config.delete_fraction = 0.2;
  youtopia::ExperimentDriver driver(config);
  const youtopia::ExperimentResult result = driver.Run(verbose);
  return youtopia::bench::Report("fig4_mixed", "Figure 4",
                                 "mixed insert/delete", config, result,
                                 driver.db())
             ? 0
             : 1;
}
