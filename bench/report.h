#ifndef YOUTOPIA_BENCH_REPORT_H_
#define YOUTOPIA_BENCH_REPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "workload/experiment.h"

namespace youtopia {
namespace bench {

// Machine-readable benchmark output. Every harness in bench/ drops a
// `BENCH_<name>.json` next to where it runs (or into $YOUTOPIA_BENCH_DIR)
// so successive PRs can diff throughput, rows examined and storage growth
// against a recorded baseline instead of eyeballing printf tables.

// Resolves "<dir>/BENCH_<name>.json" where dir is $YOUTOPIA_BENCH_DIR when
// set, else the current working directory.
std::string BenchJsonPath(const std::string& name);

// Writes BENCH_<name>.json for a figure harness run: the experiment config
// (including the workers/islands engine axes), initial-database report, one
// record per (mapping count, tracker) cell (aborts, cascading abort
// requests, per-update seconds plus the derived updates/sec throughput) and
// the final storage footprint (row, version and index-entry counts — the
// append-only index cost). Returns false and prints to stderr if the file
// cannot be written.
bool WriteExperimentJson(const std::string& name, const std::string& workload,
                         const ExperimentConfig& config,
                         const ExperimentResult& result, const Database& db);

// One pipeline stage's latency summary, lifted out of an
// obs::MetricsSnapshot histogram at the end of an arm. Values are
// nanoseconds; percentiles carry the power-of-two bucket resolution of the
// registry (upper bucket bound, clamped to the observed max) — stable
// across runs, which is what a diffable report needs.
struct StageSummary {
  std::string stage;
  uint64_t count = 0;
  uint64_t p50_ns = 0;
  uint64_t p90_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t max_ns = 0;
};

// Extracts the non-empty stage histograms of `snap` as StageSummary rows,
// in Stage enumeration order.
std::vector<StageSummary> SummarizeStages(const obs::MetricsSnapshot& snap);

// One arm of the bench/parallel_scale scaling curve.
struct ParallelScalePoint {
  std::string engine;  // "serial" or "parallel"
  // Workload shape the arm ran under: "islands" (disjoint components, the
  // sharding regime) or "dense" (one tgd-closure component, the intra-shard
  // regime).
  std::string graph = "islands";
  size_t workers = 1;      // shard lanes (1 for the serial scheduler)
  size_t sub_workers = 1;  // threads per shard (intra-shard mode when > 1)
  double seconds_per_run = 0;
  double updates_per_second = 0;
  double speedup_vs_serial = 0;
  double aborts = 0;
  double cross_shard = 0;
  double escaped = 0;
  // Intra-shard optimistic-mode counters (zero unless sub_workers > 1).
  double intra_aborts = 0;
  double intra_redos = 0;
  double intra_escalations = 0;
  // Per-stage latency summaries from the arm's metrics registry,
  // accumulated over every measured run (empty for the serial engine,
  // which records no stage latencies).
  std::vector<StageSummary> stages;
};

// Writes BENCH_<name>.json for the scaling curve (schema_version 4: adds
// the per-arm stage latency summaries; 3 added zipf_theta; 2 added the
// graph tag, sub_workers and the intra-shard counters per arm): the
// generator config, the host's hardware concurrency (a 1-CPU container
// cannot show wall-clock parallel speedup, so readers need this to
// interpret the curve), and one record per engine arm.
bool WriteParallelScaleJson(const std::string& name,
                            const ExperimentConfig& config,
                            const std::vector<ParallelScalePoint>& points);

// One arm of the bench/streaming_ingest open-loop driver.
struct StreamingIngestArm {
  std::string mode;            // "unbounded" (closed loop) or "paced"
  double offered_rate = 0;     // target ops/sec (0 = submit as fast as
                               // the admission path admits)
  double wall_seconds = 0;     // first submit until the Flush barrier
  double sustained_rate = 0;   // retired ops per wall second
  // Producer-observed admission latency per op (routing + any time blocked
  // on a full inbox), in microseconds.
  double stall_p50_us = 0;
  double stall_p99_us = 0;
  double stall_max_us = 0;
  // Pipeline-side counters from ParallelStats.
  double admission_stall_seconds = 0;
  size_t inbox_high_watermark = 0;
  size_t inbox_capacity = 0;
  size_t pinned = 0;
  size_t cross_shard = 0;
  size_t escaped = 0;
  // Per-stage latency summaries from the arm's pipeline registry (submit,
  // inbox-wait, admission, chase, commit, ... — see obs::Stage).
  std::vector<StageSummary> stages;
};

// Writes BENCH_<name>.json for the streaming driver (schema_version 2:
// adds the per-arm stage latency summaries; files without the field are
// version 1): generator config, hardware concurrency, one record per
// offered-rate arm, and the result of the committed-op serial-replay
// equivalence check (byte-identical final database state).
bool WriteStreamingIngestJson(const std::string& name,
                              const ExperimentConfig& config,
                              const std::vector<StreamingIngestArm>& arms,
                              bool replay_identical);

// One arm of the bench/skew_suite adversarial-skew sweep: a (graph shape,
// zipf theta) fixture executed with value-aware sketch costing either ON or
// OFF (Planner::set_sketch_costing), on otherwise identical data, plans and
// workload. rows_examined is the arm's planner-quality metric: total rows
// fetched by every violation query and conflict re-check across the run
// (Scheduler::TotalRowsExamined).
struct SkewSuiteArm {
  std::string graph;       // "chain" or "fanout"
  double zipf_theta = 0;   // workload skew of this fixture
  bool sketch = false;     // value-aware costing on?
  uint64_t rows_examined = 0;
  uint64_t replans = 0;    // mid-run plan recompilations across all tgds
  size_t committed = 0;
  double steps = 0;
  double seconds = 0;
};

// Writes BENCH_<name>.json for the skew suite (schema_version 1): the
// fixture config block and one record per (graph, theta, sketch) arm. CI
// gates on the rows_examined ratio between the sketch-off and sketch-on
// arms of each fixture: >= 2x at high theta, parity (+-10%) at theta 0.
bool WriteSkewSuiteJson(const std::string& name,
                        const ExperimentConfig& config,
                        const std::vector<SkewSuiteArm>& arms);

}  // namespace bench
}  // namespace youtopia

#endif  // YOUTOPIA_BENCH_REPORT_H_
