#ifndef YOUTOPIA_BENCH_REPORT_H_
#define YOUTOPIA_BENCH_REPORT_H_

#include <string>

#include "workload/experiment.h"

namespace youtopia {
namespace bench {

// Machine-readable benchmark output. Every harness in bench/ drops a
// `BENCH_<name>.json` next to where it runs (or into $YOUTOPIA_BENCH_DIR)
// so successive PRs can diff throughput, rows examined and storage growth
// against a recorded baseline instead of eyeballing printf tables.

// Resolves "<dir>/BENCH_<name>.json" where dir is $YOUTOPIA_BENCH_DIR when
// set, else the current working directory.
std::string BenchJsonPath(const std::string& name);

// Writes BENCH_<name>.json for a figure harness run: the experiment config,
// initial-database report, one record per (mapping count, tracker) cell
// (aborts, cascading abort requests, per-update seconds plus the derived
// updates/sec throughput) and the final storage footprint (row, version and
// index-entry counts — the append-only index cost). Returns false and
// prints to stderr if the file cannot be written.
bool WriteExperimentJson(const std::string& name, const std::string& workload,
                         const ExperimentConfig& config,
                         const ExperimentResult& result, const Database& db);

}  // namespace bench
}  // namespace youtopia

#endif  // YOUTOPIA_BENCH_REPORT_H_
