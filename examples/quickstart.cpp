// Quickstart: build a small collaborative travel repository (the paper's
// Figure 2), watch the update exchange machinery propagate a change
// (Example 1.1), and query the repository under both semantics.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/youtopia.h"

using youtopia::QuerySemantics;
using youtopia::Youtopia;

namespace {

void Check(const youtopia::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(youtopia::Result<T> result) {
  if (!result.ok()) Check(result.status());
  return std::move(result).value();
}

}  // namespace

int main() {
  Youtopia repo;

  // --- Schema: the community's logical tables. ----------------------------
  Check(repo.CreateRelation("Attraction", {"location", "name"}));
  Check(repo.CreateRelation("Tours", {"attraction", "company", "tour_start"}));
  Check(repo.CreateRelation("Reviews", {"company", "attraction", "review"}));

  // --- A mapping: every offered tour must have a review entry (sigma3). ---
  Check(repo.AddMapping("Attraction(l, n) & Tours(n, co, s) -> "
                        "exists r: Reviews(co, n, r)"));

  // --- Seed data. ----------------------------------------------------------
  Check(repo.Insert("Attraction", {"Geneva", "Geneva Winery"}));
  Check(repo.Insert("Tours", {"Geneva Winery", "XYZ", "Syracuse"}));

  // The chase has already filled in a review placeholder (a labeled null):
  std::printf("Reviews after inserting the XYZ tour:\n%s\n",
              Check(repo.Dump("Reviews")).c_str());

  // --- Example 1.1: a new tour appears; update exchange reacts. ------------
  Check(repo.Insert("Attraction", {"Niagara Falls", "Niagara Falls"}));
  const youtopia::UpdateReport report = Check(
      repo.Insert("Tours", {"Niagara Falls", "ABC Tours", "Toronto"}));
  std::printf(
      "inserting the ABC tour took %zu chase steps and repaired %zu "
      "violation(s)\n",
      report.steps, report.violations_repaired);
  std::printf("Reviews now:\n%s\n", Check(repo.Dump("Reviews")).c_str());

  // --- Labeled nulls can be named and completed later. ---------------------
  Check(repo.Insert("Attraction", {"Ithaca", "Gorge Trail"}));
  Check(repo.Insert("Tours", {"Gorge Trail", "?operator", "Ithaca"}));
  std::printf("Tours with an unknown operator:\n%s\n",
              Check(repo.Dump("Tours")).c_str());
  Check(repo.ReplaceNull("?operator", "Finger Lakes Hikes"));
  std::printf("...completed by a knowledgeable user:\n%s\n",
              Check(repo.Dump("Tours")).c_str());

  // --- Queries: certain vs best-effort semantics (Section 1.2). ------------
  const auto certain = Check(repo.Query(
      "Tours(n, co, s) & Reviews(co, n, r)", {"n", "r"},
      QuerySemantics::kCertain));
  const auto best_effort = Check(repo.Query(
      "Tours(n, co, s) & Reviews(co, n, r)", {"n", "r"},
      QuerySemantics::kBestEffort));
  std::printf("certain answers (%zu):\n", certain.tuples.size());
  for (const std::string& row : certain.rendered) {
    std::printf("  %s\n", row.c_str());
  }
  std::printf("best-effort answers (%zu):\n", best_effort.tuples.size());
  for (const std::string& row : best_effort.rendered) {
    std::printf("  %s\n", row.c_str());
  }

  std::printf("\nall mappings satisfied: %s\n",
              repo.AllMappingsSatisfied() ? "yes" : "no");
  return 0;
}
