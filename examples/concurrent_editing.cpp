// Concurrent editing: many community members update a shared repository at
// once. Shows the optimistic scheduler's behavior under the three
// cascading-abort algorithms (NAIVE / COARSE / PRECISE, Section 5.1) on an
// identical workload — a miniature of the paper's evaluation.
//
// Build & run:  cmake --build build && ./build/examples/concurrent_editing
#include <cstdio>

#include "ccontrol/scheduler.h"
#include "workload/generators.h"

using namespace youtopia;

int main() {
  constexpr uint64_t kSeed = 2009;  // VLDB '09

  // A synthetic community repository: 40 relations, 30 mappings, seeded by
  // the update-exchange machinery itself.
  Database db;
  Rng rng(kSeed);
  SchemaGenOptions schema_opts;
  schema_opts.num_relations = 40;
  (void)GenerateSchema(&db, &rng, schema_opts);
  const std::vector<Value> constants = GenerateConstantPool(&db, &rng, 25);
  MappingGenOptions mapping_opts;
  mapping_opts.count = 30;
  const std::vector<Tgd> tgds =
      GenerateMappings(db, constants, &rng, mapping_opts);

  RandomAgent seeding_agent(kSeed);
  InitialDataOptions data_opts;
  data_opts.num_tuples = 800;
  const InitialDataReport seeded = GenerateInitialData(
      &db, &tgds, constants, &rng, &seeding_agent, data_opts);
  std::printf("repository: %zu relations, %zu mappings, %zu tuples\n\n",
              db.num_relations(), tgds.size(), seeded.total_tuples);

  // One workload of 120 concurrent updates (80%% inserts / 20%% deletes),
  // replayed identically under each algorithm.
  WorkloadOptions wl;
  wl.num_updates = 120;
  wl.delete_fraction = 0.2;
  Rng wl_rng(kSeed + 1);
  const std::vector<WriteOp> ops =
      GenerateWorkload(&db, constants, &wl_rng, wl);

  std::printf("%-8s %8s %8s %10s %12s %10s\n", "tracker", "aborts", "direct",
              "cascading", "steps", "completed");
  for (TrackerKind kind :
       {TrackerKind::kNaive, TrackerKind::kCoarse, TrackerKind::kPrecise}) {
    db.RemoveVersionsAbove(0);  // rewind to the seeded repository
    RandomAgent agent(kSeed + 7);
    SchedulerOptions opts;
    opts.tracker = kind;
    Scheduler sched(&db, &tgds, &agent, opts);
    for (const WriteOp& op : ops) sched.Submit(op);
    sched.RunToCompletion();
    const SchedulerStats& s = sched.stats();
    std::printf("%-8s %8llu %8llu %10llu %12llu %10llu\n",
                TrackerKindName(kind),
                static_cast<unsigned long long>(s.aborts),
                static_cast<unsigned long long>(s.direct_conflict_aborts),
                static_cast<unsigned long long>(s.cascading_abort_requests),
                static_cast<unsigned long long>(s.total_steps),
                static_cast<unsigned long long>(s.updates_completed));
  }

  std::printf(
      "\nNAIVE aborts every younger update on any conflict; COARSE tracks\n"
      "read dependencies at relation granularity; PRECISE tests each logged\n"
      "write against each read query and cascades only true dependencies.\n");
  return 0;
}
