// Travel portal: the paper's running Figure 2 repository end to end —
// including Example 2.3 (a deletion resolved at the negative frontier) and
// Example 3.1 (two concurrent updates whose interference the optimistic
// scheduler detects and repairs by aborting the polluted update).
//
// Build & run:  cmake --build build && ./build/examples/travel_portal
#include <cstdio>

#include "ccontrol/scheduler.h"
#include "core/update.h"
#include "relational/database.h"
#include "tgd/parser.h"

using namespace youtopia;

namespace {

struct Portal {
  Database db;
  std::vector<Tgd> tgds;
  RelationId C, S, A, T, R, V, E;

  Portal() {
    C = *db.CreateRelation("C", {"city"});
    S = *db.CreateRelation("S", {"code", "location", "city_served"});
    A = *db.CreateRelation("A", {"location", "name"});
    T = *db.CreateRelation("T", {"attraction", "company", "tour_start"});
    R = *db.CreateRelation("R", {"company", "attraction", "review"});
    V = *db.CreateRelation("V", {"city", "convention"});
    E = *db.CreateRelation("E", {"convention", "attraction"});
    TgdParser parser(&db.catalog(), &db.symbols());
    for (const char* text :
         {"C(c) -> exists a, l: S(a, l, c)", "S(a, l, c) -> C(l) & C(c)",
          "A(l, n) & T(n, co, s) -> exists r: R(co, n, r)",
          "V(c, x) & T(n, co, c) -> E(x, n)"}) {
      tgds.push_back(*parser.ParseTgd(text));
    }
    Seed(C, {{"Ithaca"}, {"Syracuse"}});
    Seed(S, {{"SYR", "Syracuse", "Syracuse"}, {"SYR", "Syracuse", "Ithaca"}});
    Seed(A, {{"Geneva", "Geneva Winery"}, {"Niagara Falls", "Niagara Falls"}});
    Seed(T, {{"Geneva Winery", "XYZ", "Syracuse"}});
    Seed(R, {{"XYZ", "Geneva Winery", "Great!"}});
    Seed(V, {{"Syracuse", "Science Conf"}});
    Seed(E, {{"Science Conf", "Geneva Winery"}});
  }

  TupleData Row(const std::vector<std::string>& values) {
    TupleData out;
    for (const auto& v : values) out.push_back(db.InternConstant(v));
    return out;
  }
  void Seed(RelationId rel, const std::vector<std::vector<std::string>>& rows) {
    for (const auto& r : rows) db.Apply(WriteOp::Insert(rel, Row(r)), 0);
  }
  void Dump(const char* name, RelationId rel) {
    std::printf("%s:\n", name);
    Snapshot snap(&db, kReadLatest);
    snap.ForEachVisible(rel, [&](RowId, const TupleData& data) {
      std::printf("  %s\n", TupleToString(data, db.symbols()).c_str());
    });
  }
};

// The table owner from Example 2.3: asked which witness tuple to delete,
// they keep the attraction and drop the tour.
class TableOwner : public FrontierAgent {
 public:
  PositiveDecision DecidePositive(const Snapshot&, const FrontierTuple& t,
                                  const Provenance&) override {
    return PositiveDecision::Unify(t.more_specific.front());
  }
  std::vector<size_t> DecideNegative(const Snapshot& snap,
                                     const NegativeFrontier& nf) override {
    std::printf("  [frontier] choose tuples to delete among:\n");
    for (size_t i = 0; i < nf.candidates.size(); ++i) {
      const TupleData* data =
          snap.VisibleData(nf.candidates[i].rel, nf.candidates[i].row);
      std::printf("    %zu: %s\n", i,
                  data ? TupleToString(*data, snap.db().symbols()).c_str()
                       : "(gone)");
    }
    std::printf("  [frontier] user deletes option 1 (the tour)\n");
    return {1};
  }
};

}  // namespace

int main() {
  std::printf("=== Example 2.3: deletion resolved at the negative frontier "
              "===\n");
  {
    Portal portal;
    TableOwner owner;
    const RowId review = *portal.db.FindRowWithData(
        portal.R, portal.Row({"XYZ", "Geneva Winery", "Great!"}), 0);
    Update u(1, WriteOp::Delete(portal.R, review), &portal.tgds);
    u.RunToCompletion(&portal.db, &owner);
    portal.Dump("T after the cascade", portal.T);
    portal.Dump("A after the cascade", portal.A);
  }

  std::printf("\n=== Example 3.1: interference between concurrent updates "
              "===\n");
  {
    Portal portal;
    TableOwner owner;
    SchedulerOptions opts;
    opts.tracker = TrackerKind::kPrecise;
    Scheduler sched(&portal.db, &portal.tgds, &owner, opts);

    // u1: XYZ discontinues Geneva Winery tours (review deleted, the user
    // will eventually delete the tour). u2: Math Conf is scheduled in
    // Syracuse — it must NOT derive an excursion to a doomed tour.
    const RowId review = *portal.db.FindRowWithData(
        portal.R, portal.Row({"XYZ", "Geneva Winery", "Great!"}), 0);
    sched.Submit(WriteOp::Delete(portal.R, review));
    sched.Submit(
        WriteOp::Insert(portal.V, portal.Row({"Syracuse", "Math Conf"})));
    sched.RunToCompletion();

    const SchedulerStats& stats = sched.stats();
    std::printf("updates completed=%llu aborts=%llu (direct=%llu)\n",
                static_cast<unsigned long long>(stats.updates_completed),
                static_cast<unsigned long long>(stats.aborts),
                static_cast<unsigned long long>(stats.direct_conflict_aborts));
    portal.Dump("E (no premature excursion idea survives)", portal.E);
    portal.Dump("V", portal.V);

    ViolationDetector detector(&portal.tgds);
    Snapshot snap(&portal.db, kReadLatest);
    std::printf("all mappings satisfied: %s\n",
                detector.SatisfiesAll(snap) ? "yes" : "no");
  }
  return 0;
}
