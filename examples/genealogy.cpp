// Genealogy: the paper's Section 2.2 example of a *cyclic* mapping that
// classical update exchange systems must reject:
//
//     Person(x) -> exists y: Father(x, y) & Person(y)
//
// Every person has a father who is also a person. The classical chase loops
// forever on this tgd; Youtopia turns the nontermination into a controlled,
// cooperative process: the chase stops at frontier tuples and users decide
// whether the unknown father is a new person (expand — the chain grows) or
// someone already recorded (unify — the chain closes).
//
// Build & run:  cmake --build build && ./build/examples/genealogy
#include <cstdio>

#include "core/standard_chase.h"
#include "core/update.h"
#include "core/youtopia.h"
#include "tgd/dependency_graph.h"
#include "tgd/parser.h"

using namespace youtopia;

namespace {

// A "user" with family knowledge: expands the ancestor chain a fixed number
// of times, then declares the next unknown ancestor to be a known person.
class FamilyHistorian : public FrontierAgent {
 public:
  explicit FamilyHistorian(size_t known_generations)
      : remaining_(known_generations) {}

  PositiveDecision DecidePositive(const Snapshot&, const FrontierTuple& t,
                                  const Provenance&) override {
    if (remaining_ > 0) {
      --remaining_;
      return PositiveDecision::Expand();
    }
    return PositiveDecision::Unify(t.more_specific.front());
  }
  std::vector<size_t> DecideNegative(const Snapshot&,
                                     const NegativeFrontier&) override {
    return {0};
  }

 private:
  size_t remaining_;
};

}  // namespace

int main() {
  Database db;
  const RelationId person = *db.CreateRelation("Person", {"name"});
  const RelationId father = *db.CreateRelation("Father", {"child", "father"});

  TgdParser parser(&db.catalog(), &db.symbols());
  std::vector<Tgd> tgds;
  tgds.push_back(
      *parser.ParseTgd("Person(x) -> exists y: Father(x, y) & Person(y)"));

  // 1. The mapping is genuinely cyclic: the classical chase refuses it.
  // (Demonstrated on a scratch copy so the refused insert does not leave a
  // dangling violation in the real repository.)
  DependencyGraph graph(db.catalog(), tgds);
  std::printf("weakly acyclic: %s\n", graph.IsWeaklyAcyclic() ? "yes" : "no");
  {
    Database scratch;
    (void)*scratch.CreateRelation("Person", {"name"});
    (void)*scratch.CreateRelation("Father", {"child", "father"});
    TgdParser scratch_parser(&scratch.catalog(), &scratch.symbols());
    std::vector<Tgd> scratch_tgds;
    scratch_tgds.push_back(*scratch_parser.ParseTgd(
        "Person(x) -> exists y: Father(x, y) & Person(y)"));
    StandardChase classical(&scratch, &scratch_tgds);
    StandardChase::Options copts;
    copts.require_weak_acyclicity = true;
    scratch.Apply(WriteOp::Insert(0, {scratch.InternConstant("John")}), 0);
    auto refused = classical.Run(0, copts);
    std::printf("classical chase: %s\n",
                refused.ok() ? "ran (unexpected!)"
                             : refused.status().ToString().c_str());
  }

  // 2. The cooperative chase handles it: a user who knows three
  // generations expands three times, then ties the family tree back to
  // John's recorded great-grandfather... here, for the demo, back to an
  // existing Person (making the lineage finite).
  FamilyHistorian historian(/*known_generations=*/3);
  Update update(1, WriteOp::Insert(person, {db.InternConstant("Mary")}),
                &tgds);
  update.RunToCompletion(&db, &historian);

  std::printf("cooperative chase finished: %s after %zu steps, %zu frontier "
              "ops\n",
              update.finished() ? "yes" : "no", update.steps_taken(),
              update.frontier_ops_performed());
  std::printf("Person has %zu tuples, Father has %zu tuples\n",
              db.CountVisible(person, kReadLatest),
              db.CountVisible(father, kReadLatest));

  Snapshot snap(&db, kReadLatest);
  std::printf("\nFather relation (x<N> are labeled nulls — unnamed "
              "ancestors):\n");
  snap.ForEachVisible(father, [&](RowId, const TupleData& data) {
    std::printf("  %s\n", TupleToString(data, db.symbols()).c_str());
  });

  ViolationDetector detector(&tgds);
  std::printf("\nall mappings satisfied: %s\n",
              detector.SatisfiesAll(snap) ? "yes" : "no");

  // 3. Under an always-expand user the chase would never terminate —
  // Youtopia's controlled nontermination means "users can always add
  // further ancestors". We bound it with a step cap to show the growth.
  ExpandAgent always_expand;
  UpdateOptions opts;
  opts.max_steps = 30;
  Update unbounded(2, WriteOp::Insert(person, {db.InternConstant("Ada")}),
                   &tgds, opts);
  unbounded.RunToCompletion(&db, &always_expand);
  std::printf("\nalways-expand user: chase %s (hit step cap: %s); Person "
              "now has %zu tuples\n",
              unbounded.finished() ? "stopped" : "running",
              unbounded.hit_step_cap() ? "yes" : "no",
              db.CountVisible(person, kReadLatest));
  return 0;
}
